//! Infinite lines and mirror images.
//!
//! The image method replaces "reflect off a wall" with "draw a straight
//! line to the transmitter's mirror image across the wall plane".
//! [`Line::mirror`] is that primitive.

use serde::{Deserialize, Serialize};

use crate::segment::Segment;
use crate::vec2::{Point, Vec2};

/// An infinite line through `origin` with (non-zero) direction `dir`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Line {
    origin: Point,
    dir: Vec2,
}

impl Line {
    /// Creates a line through `origin` with direction `dir`.
    ///
    /// Returns `None` when `dir` is (near-)zero.
    pub fn new(origin: Point, dir: Vec2) -> Option<Self> {
        dir.normalized().map(|d| Line { origin, dir: d })
    }

    /// Line supporting a segment; `None` for degenerate segments.
    pub fn through_segment(seg: &Segment) -> Option<Self> {
        Line::new(seg.a, seg.direction())
    }

    /// A point the line passes through.
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// Unit direction vector.
    pub fn dir(&self) -> Vec2 {
        self.dir
    }

    /// Signed perpendicular distance from `p` (positive on the side the
    /// CCW normal points to).
    pub fn signed_distance(&self, p: Point) -> f64 {
        self.dir.cross(p - self.origin)
    }

    /// Perpendicular foot of `p` on the line.
    pub fn project(&self, p: Point) -> Point {
        self.origin + self.dir * (p - self.origin).dot(self.dir)
    }

    /// Mirror image of `p` across the line — the image-method primitive.
    ///
    /// ```
    /// use mpdf_geom::line::Line;
    /// use mpdf_geom::vec2::Vec2;
    ///
    /// let wall = Line::new(Vec2::ZERO, Vec2::new(1.0, 0.0)).unwrap();
    /// assert_eq!(wall.mirror(Vec2::new(2.0, 3.0)), Vec2::new(2.0, -3.0));
    /// ```
    pub fn mirror(&self, p: Point) -> Point {
        let foot = self.project(p);
        foot + (foot - p)
    }

    /// True when `p` and `q` are strictly on opposite sides of the line.
    pub fn separates(&self, p: Point, q: Point) -> bool {
        let sp = self.signed_distance(p);
        let sq = self.signed_distance(q);
        sp * sq < 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn construction_rejects_zero_direction() {
        assert!(Line::new(p(0.0, 0.0), Vec2::ZERO).is_none());
        assert!(Line::through_segment(&Segment::new(p(1.0, 1.0), p(1.0, 1.0))).is_none());
    }

    #[test]
    fn mirror_across_axis_lines() {
        let x_axis = Line::new(p(0.0, 0.0), Vec2::new(1.0, 0.0)).unwrap();
        assert_eq!(x_axis.mirror(p(2.0, 3.0)), p(2.0, -3.0));
        let y_axis = Line::new(p(0.0, 0.0), Vec2::new(0.0, 1.0)).unwrap();
        assert_eq!(y_axis.mirror(p(2.0, 3.0)), p(-2.0, 3.0));
    }

    #[test]
    fn mirror_is_involution() {
        let line = Line::new(p(1.0, -2.0), Vec2::new(3.0, 1.0)).unwrap();
        let q = p(4.5, 0.25);
        let back = line.mirror(line.mirror(q));
        assert!((back - q).norm() < 1e-12);
    }

    #[test]
    fn mirror_preserves_distance_to_line() {
        let line = Line::new(p(0.0, 1.0), Vec2::new(1.0, 2.0)).unwrap();
        let q = p(3.0, -4.0);
        let m = line.mirror(q);
        assert!((line.signed_distance(q) + line.signed_distance(m)).abs() < 1e-12);
    }

    #[test]
    fn projection_is_on_line_and_closest() {
        let line = Line::new(p(0.0, 0.0), Vec2::new(1.0, 1.0)).unwrap();
        let q = p(2.0, 0.0);
        let f = line.project(q);
        assert!((f - p(1.0, 1.0)).norm() < 1e-12);
        assert!(line.signed_distance(f).abs() < 1e-12);
    }

    #[test]
    fn separates_detects_sides() {
        let line = Line::new(p(0.0, 0.0), Vec2::new(1.0, 0.0)).unwrap();
        assert!(line.separates(p(0.0, 1.0), p(0.0, -1.0)));
        assert!(!line.separates(p(1.0, 1.0), p(2.0, 5.0)));
        assert!(!line.separates(p(1.0, 0.0), p(2.0, 5.0))); // on-line is not strict
    }
}
