//! Line segments: intersection and distance queries.
//!
//! Segments model walls and ray legs. The ray tracer needs exact
//! segment–segment intersection (does a ray leg hit a wall?), and the
//! human-body model needs point-to-segment distance (how close is the body
//! to a propagation path?).

use serde::{Deserialize, Serialize};

use crate::vec2::{Point, Vec2};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

/// Result of a segment–segment intersection query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intersection {
    /// The segments do not meet.
    None,
    /// Proper crossing at the given point, with parameters `t` (along the
    /// first segment) and `u` (along the second), both in `[0, 1]`.
    Point {
        /// Intersection location.
        at: Point,
        /// Parameter along the first segment.
        t: f64,
        /// Parameter along the second segment.
        u: f64,
    },
    /// The segments are collinear and overlap over a non-degenerate range.
    Collinear,
}

impl Segment {
    /// Creates a segment between two points.
    pub fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// The displacement `b − a`.
    pub fn direction(&self) -> Vec2 {
        self.b - self.a
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.direction().norm()
    }

    /// Midpoint.
    pub fn midpoint(&self) -> Point {
        self.a.lerp(self.b, 0.5)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Intersection with another segment.
    ///
    /// Endpoint touches count as [`Intersection::Point`]; exactly
    /// collinear overlapping segments report [`Intersection::Collinear`].
    pub fn intersect(&self, other: &Segment) -> Intersection {
        let r = self.direction();
        let s = other.direction();
        let qp = other.a - self.a;
        let denom = r.cross(s);
        let qp_cross_r = qp.cross(r);
        const EPS: f64 = 1e-12;

        if denom.abs() < EPS {
            if qp_cross_r.abs() < EPS {
                // Collinear: check 1-D overlap along r.
                let rr = r.dot(r);
                if rr < EPS {
                    // Degenerate first segment (a point).
                    return if self.distance_to_point(other.a) < EPS
                        || other.distance_to_point(self.a) < EPS
                    {
                        Intersection::Collinear
                    } else {
                        Intersection::None
                    };
                }
                let t0 = qp.dot(r) / rr;
                let t1 = t0 + s.dot(r) / rr;
                let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
                if hi < -EPS || lo > 1.0 + EPS {
                    Intersection::None
                } else {
                    Intersection::Collinear
                }
            } else {
                Intersection::None
            }
        } else {
            let t = qp.cross(s) / denom;
            let u = qp_cross_r / denom;
            if (-EPS..=1.0 + EPS).contains(&t) && (-EPS..=1.0 + EPS).contains(&u) {
                Intersection::Point {
                    at: self.at(t.clamp(0.0, 1.0)),
                    t: t.clamp(0.0, 1.0),
                    u: u.clamp(0.0, 1.0),
                }
            } else {
                Intersection::None
            }
        }
    }

    /// True when the segments meet in any way.
    pub fn intersects(&self, other: &Segment) -> bool {
        !matches!(self.intersect(other), Intersection::None)
    }

    /// Shortest distance from `p` to the segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// Closest point on the segment to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let d = self.direction();
        let len2 = d.norm_sqr();
        if len2 < 1e-24 {
            return self.a;
        }
        let t = ((p - self.a).dot(d) / len2).clamp(0.0, 1.0);
        self.at(t)
    }

    /// Parameter `t ∈ [0, 1]` of the closest point to `p`.
    pub fn closest_parameter(&self, p: Point) -> f64 {
        let d = self.direction();
        let len2 = d.norm_sqr();
        if len2 < 1e-24 {
            return 0.0;
        }
        ((p - self.a).dot(d) / len2).clamp(0.0, 1.0)
    }

    /// Outward unit normal (counter-clockwise perpendicular of the
    /// direction); `None` for degenerate segments.
    pub fn normal(&self) -> Option<Vec2> {
        self.direction().normalized().map(Vec2::perp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn crossing_segments_intersect_in_the_middle() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 2.0));
        let s2 = Segment::new(p(0.0, 2.0), p(2.0, 0.0));
        match s1.intersect(&s2) {
            Intersection::Point { at, t, u } => {
                assert!((at - p(1.0, 1.0)).norm() < 1e-12);
                assert!((t - 0.5).abs() < 1e-12);
                assert!((u - 0.5).abs() < 1e-12);
            }
            other => panic!("expected point intersection, got {other:?}"),
        }
    }

    #[test]
    fn parallel_segments_do_not_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(0.0, 1.0), p(1.0, 1.0));
        assert_eq!(s1.intersect(&s2), Intersection::None);
    }

    #[test]
    fn collinear_overlap_detected() {
        let s1 = Segment::new(p(0.0, 0.0), p(2.0, 0.0));
        let s2 = Segment::new(p(1.0, 0.0), p(3.0, 0.0));
        assert_eq!(s1.intersect(&s2), Intersection::Collinear);
        let s3 = Segment::new(p(3.0, 0.0), p(4.0, 0.0));
        assert_eq!(s1.intersect(&s3), Intersection::None);
    }

    #[test]
    fn touching_endpoints_count() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 1.0));
        let s2 = Segment::new(p(1.0, 1.0), p(2.0, 0.0));
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn near_miss_does_not_intersect() {
        let s1 = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        let s2 = Segment::new(p(0.5, 0.001), p(0.5, 1.0));
        assert_eq!(s1.intersect(&s2), Intersection::None);
    }

    #[test]
    fn distance_to_point_regions() {
        let s = Segment::new(p(0.0, 0.0), p(2.0, 0.0));
        assert!((s.distance_to_point(p(1.0, 3.0)) - 3.0).abs() < 1e-12); // above middle
        assert!((s.distance_to_point(p(-3.0, 4.0)) - 5.0).abs() < 1e-12); // beyond a
        assert!((s.distance_to_point(p(5.0, 4.0)) - 5.0).abs() < 1e-12); // beyond b
        assert_eq!(s.distance_to_point(p(1.0, 0.0)), 0.0); // on segment
    }

    #[test]
    fn closest_point_clamps_to_endpoints() {
        let s = Segment::new(p(0.0, 0.0), p(1.0, 0.0));
        assert_eq!(s.closest_point(p(-5.0, 0.0)), p(0.0, 0.0));
        assert_eq!(s.closest_point(p(9.0, 9.0)), p(1.0, 0.0));
        assert_eq!(s.closest_parameter(p(0.25, 7.0)), 0.25);
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let s = Segment::new(p(1.0, 1.0), p(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_point(p(0.0, 0.0)), p(1.0, 1.0));
        assert!(s.normal().is_none());
    }

    #[test]
    fn geometry_accessors() {
        let s = Segment::new(p(0.0, 0.0), p(4.0, 0.0));
        assert_eq!(s.length(), 4.0);
        assert_eq!(s.midpoint(), p(2.0, 0.0));
        assert_eq!(s.at(0.25), p(1.0, 0.0));
        assert_eq!(s.normal(), Some(Vec2::new(0.0, 1.0)));
    }
}
