//! # mpdf-geom — 2-D geometry substrate
//!
//! Plan-view geometry for the indoor propagation simulator:
//!
//! - [`vec2`] — points and vectors in metres.
//! - [`segment`] — walls and ray legs: intersection and distance queries.
//! - [`mod@line`] — mirror images (the image-method reflection primitive).
//! - [`shapes`] — rectangles (rooms, furniture) and circles (human body
//!   footprints).
//! - [`polygon`] — convex polygons (angled furniture).
//!
//! ```
//! use mpdf_geom::line::Line;
//! use mpdf_geom::vec2::Vec2;
//!
//! // The transmitter's image across a wall along the x-axis:
//! let wall = Line::new(Vec2::ZERO, Vec2::new(1.0, 0.0)).unwrap();
//! let tx = Vec2::new(1.0, 2.0);
//! assert_eq!(wall.mirror(tx), Vec2::new(1.0, -2.0));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod line;
pub mod polygon;
pub mod segment;
pub mod shapes;
pub mod vec2;

pub use polygon::ConvexPolygon;
pub use segment::Segment;
pub use shapes::{Circle, Rect};
pub use vec2::{Point, Vec2};
