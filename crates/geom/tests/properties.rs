//! Property-based tests for the geometry substrate.

use mpdf_geom::line::Line;
use mpdf_geom::segment::{Intersection, Segment};
use mpdf_geom::shapes::{Circle, Rect};
use mpdf_geom::vec2::Vec2;
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = f64> {
    -100.0f64..100.0
}

fn point() -> impl Strategy<Value = Vec2> {
    (coord(), coord()).prop_map(|(x, y)| Vec2::new(x, y))
}

proptest! {
    #[test]
    fn mirror_is_involution(o in point(), d in point(), q in point()) {
        prop_assume!(d.norm() > 1e-6);
        let line = Line::new(o, d).unwrap();
        let back = line.mirror(line.mirror(q));
        prop_assert!((back - q).norm() < 1e-8 * q.norm().max(1.0));
    }

    #[test]
    fn mirror_preserves_distances_to_line_points(o in point(), d in point(), q in point(), t in -10.0f64..10.0) {
        prop_assume!(d.norm() > 1e-6);
        let line = Line::new(o, d).unwrap();
        let on_line = o + line.dir() * t;
        let m = line.mirror(q);
        prop_assert!((on_line.distance(q) - on_line.distance(m)).abs() < 1e-7 * q.norm().max(1.0));
    }

    #[test]
    fn segment_intersection_is_symmetric(a in point(), b in point(), c in point(), d in point()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
    }

    #[test]
    fn intersection_point_lies_on_both_segments(a in point(), b in point(), c in point(), d in point()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        if let Intersection::Point { at, .. } = s1.intersect(&s2) {
            let scale = (a.norm() + b.norm() + c.norm() + d.norm()).max(1.0);
            prop_assert!(s1.distance_to_point(at) < 1e-6 * scale);
            prop_assert!(s2.distance_to_point(at) < 1e-6 * scale);
        }
    }

    #[test]
    fn closest_point_is_global_minimum(a in point(), b in point(), q in point(), t in 0.0f64..1.0) {
        let s = Segment::new(a, b);
        let best = s.distance_to_point(q);
        let candidate = q.distance(s.at(t));
        prop_assert!(best <= candidate + 1e-9);
    }

    #[test]
    fn rotation_preserves_norm(v in point(), angle in -7.0f64..7.0) {
        prop_assert!((v.rotated(angle).norm() - v.norm()).abs() < 1e-9 * v.norm().max(1.0));
    }

    #[test]
    fn rect_contains_its_center_and_wall_midpoints(a in point(), b in point()) {
        prop_assume!((a.x - b.x).abs() > 1e-6 && (a.y - b.y).abs() > 1e-6);
        let r = Rect::new(a, b);
        prop_assert!(r.contains(r.center()));
        for w in r.walls() {
            prop_assert!(r.contains(w.midpoint()));
        }
    }

    #[test]
    fn segment_through_rect_center_intersects(a in point(), b in point(), dir in point()) {
        prop_assume!((a.x - b.x).abs() > 1e-3 && (a.y - b.y).abs() > 1e-3);
        prop_assume!(dir.norm() > 1e-6);
        let r = Rect::new(a, b);
        let c = r.center();
        let d = dir.normalized().unwrap() * 1000.0;
        prop_assert!(r.intersects_segment(&Segment::new(c - d, c + d)));
    }

    #[test]
    fn circle_penetration_bounded(center in point(), radius in 0.01f64..5.0, a in point(), b in point()) {
        let c = Circle::new(center, radius);
        let s = Segment::new(a, b);
        let p = c.penetration(&s);
        prop_assert!((0.0..=1.0).contains(&p));
        // blocks ⇔ penetration > 0 or exact graze
        if p > 0.0 {
            prop_assert!(c.blocks_segment(&s));
        }
        if !c.blocks_segment(&s) {
            prop_assert_eq!(p, 0.0);
            prop_assert!(c.distance_to_segment(&s) > 0.0);
        }
    }

    #[test]
    fn lerp_stays_on_segment(a in point(), b in point(), t in 0.0f64..1.0) {
        let s = Segment::new(a, b);
        let q = a.lerp(b, t);
        prop_assert!(s.distance_to_point(q) < 1e-7 * (a.norm() + b.norm()).max(1.0));
    }
}
