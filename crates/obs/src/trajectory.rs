//! Windowed metric trajectories: time series of registry deltas keyed
//! by *processed window count*, not wall-clock.
//!
//! Final metric totals (`OBS_metrics.json`) answer "how much"; drift and
//! degradation experiments need "when". A [`Recorder`] installed for a
//! run snapshots the metrics registry every `every`-th
//! [`tick`] — the pipeline ticks once per detection window — and the
//! exporter turns consecutive snapshots into per-interval counter
//! deltas. Because sampling is keyed to window counts, *which* windows
//! are sampled is deterministic for a given config at any thread count;
//! only the (explicitly nondeterministic) timing-derived values vary.
//!
//! Like the rest of the crate this is write-only observability: nothing
//! reads a trajectory back into the pipeline, and with no recorder
//! installed a tick is one relaxed atomic load.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use crate::metrics::{self, Snapshot};

/// One exported trajectory point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Processed-window count at which the sample was taken.
    pub windows: u64,
    /// Counter increments since the previous sample (first sample:
    /// since recorder install).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the sample point (absolute, not deltas).
    pub gauges: BTreeMap<String, i64>,
}

/// A raw registry snapshot pinned to a window count; deltas are derived
/// at export so out-of-order boundary races cannot corrupt them.
struct RawSample {
    windows: u64,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
}

fn raw_from_snapshot(windows: u64, snap: &Snapshot) -> RawSample {
    RawSample {
        windows,
        counters: snap.counters.iter().cloned().collect(),
        gauges: snap.gauges.iter().cloned().collect(),
    }
}

/// Samples the metrics registry every `every` ticks.
pub struct Recorder {
    every: u64,
    ticks: AtomicU64,
    baseline: RawSample,
    samples: Mutex<Vec<RawSample>>,
}

impl Recorder {
    /// Creates a recorder sampling every `every` windows (min 1). The
    /// registry state at creation is the delta baseline, so pre-run
    /// totals (calibration, earlier experiments) don't pollute the
    /// first interval.
    #[must_use]
    pub fn new(every: u64) -> Recorder {
        Recorder {
            every: every.max(1),
            ticks: AtomicU64::new(0),
            baseline: raw_from_snapshot(0, &metrics::snapshot()),
            samples: Mutex::new(Vec::new()),
        }
    }

    /// Sampling interval in windows.
    #[must_use]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Windows ticked so far.
    #[must_use]
    pub fn windows(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }

    /// Counts one processed window; the tick that crosses an `every`
    /// boundary snapshots the registry. `fetch_add` hands each
    /// concurrent ticker a unique count, so every boundary is sampled
    /// exactly once no matter how threads interleave.
    pub fn tick(&self) {
        let n = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if !n.is_multiple_of(self.every) {
            return;
        }
        let raw = raw_from_snapshot(n, &metrics::snapshot());
        crate::counter!("obs.trajectory.samples_total").inc();
        self.samples
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(raw);
    }

    /// Consumes the recorded snapshots into delta samples, ordered by
    /// window count.
    #[must_use]
    pub fn take_samples(&self) -> Vec<Sample> {
        let mut raws: Vec<RawSample> =
            std::mem::take(&mut *self.samples.lock().unwrap_or_else(PoisonError::into_inner));
        raws.sort_by_key(|r| r.windows);
        let mut last = self.baseline.counters.clone();
        let mut out = Vec::with_capacity(raws.len());
        let mut anomalies = 0u64;
        for raw in raws {
            let counters = raw
                .counters
                .iter()
                .map(|(name, value)| {
                    let prev = last.get(name).copied().unwrap_or(0);
                    // Registry counters are monotonic, so a snapshot
                    // below its predecessor is an anomaly (torn read,
                    // registry reset between samples). Clamp the delta
                    // to zero — an unchecked `u64` subtraction would
                    // panic in debug and wrap to ~2^64 in release —
                    // and surface the event instead of corrupting the
                    // series.
                    if value < &prev {
                        anomalies += 1;
                    }
                    (name.clone(), value.saturating_sub(prev))
                })
                .collect();
            last = raw.counters;
            out.push(Sample {
                windows: raw.windows,
                counters,
                gauges: raw.gauges,
            });
        }
        if anomalies > 0 {
            crate::counter!("obs.trajectory.anomalies_total").add(anomalies);
        }
        out
    }
}

/// Serializes samples as NDJSON: one
/// `{"windows":N,"counters":{..},"gauges":{..}}` object per line,
/// ready for `jq`/plotting without a JSON-array parse.
#[must_use]
pub fn to_ndjson(samples: &[Sample]) -> String {
    let mut out = String::new();
    for sample in samples {
        out.push_str(&format!("{{\"windows\":{}", sample.windows));
        out.push_str(",\"counters\":{");
        for (i, (name, value)) in sample.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            metrics::escape_json(name, &mut out);
            out.push_str(&format!("\":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in sample.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            metrics::escape_json(name, &mut out);
            out.push_str(&format!("\":{value}"));
        }
        out.push_str("}}\n");
    }
    out
}

/// Writes samples to an NDJSON file.
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_ndjson(path: &Path, samples: &[Sample]) -> io::Result<()> {
    std::fs::write(path, to_ndjson(samples))
}

static ACTIVE: AtomicBool = AtomicBool::new(false);

fn recorder_slot() -> &'static Mutex<Option<Arc<Recorder>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Recorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs a process-wide recorder sampling every `every` windows and
/// returns a handle to it (keep it to export samples after
/// [`uninstall`]). Replaces any previous recorder.
pub fn install(every: u64) -> Arc<Recorder> {
    let recorder = Arc::new(Recorder::new(every));
    let mut slot = recorder_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    *slot = Some(Arc::clone(&recorder));
    ACTIVE.store(true, Ordering::Release);
    recorder
}

/// Removes (and returns) the process-wide recorder.
pub fn uninstall() -> Option<Arc<Recorder>> {
    ACTIVE.store(false, Ordering::Release);
    recorder_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
}

/// Ticks the process-wide recorder, if one is installed. The pipeline
/// calls this once per processed detection window; with no recorder the
/// cost is one relaxed atomic load.
pub fn tick() {
    if !ACTIVE.load(Ordering::Acquire) {
        return;
    }
    let recorder = recorder_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(recorder) = recorder {
        recorder.tick();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::lock as test_lock;

    #[test]
    fn samples_exactly_at_boundaries() {
        let recorder = Recorder::new(4);
        for _ in 0..10 {
            recorder.tick();
        }
        let samples = recorder.take_samples();
        let windows: Vec<u64> = samples.iter().map(|s| s.windows).collect();
        assert_eq!(windows, vec![4, 8]);
        assert_eq!(recorder.windows(), 10);
    }

    #[test]
    fn counters_are_deltas_against_install_baseline() {
        let _serial = test_lock();
        let c = crate::metrics::counter("obs.test.trajectory_counter");
        c.add(100); // pre-install noise must not appear in interval 1
        let recorder = Recorder::new(2);
        c.add(3);
        recorder.tick();
        recorder.tick(); // boundary: sample at windows=2
        c.add(5);
        recorder.tick();
        recorder.tick(); // boundary: sample at windows=4
        let samples = recorder.take_samples();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].counters["obs.test.trajectory_counter"], 3);
        assert_eq!(samples[1].counters["obs.test.trajectory_counter"], 5);
    }

    #[test]
    fn install_tick_uninstall_roundtrip() {
        let _serial = test_lock();
        let recorder = install(1);
        tick();
        tick();
        let taken = uninstall().expect("recorder installed");
        assert!(Arc::ptr_eq(&recorder, &taken));
        tick(); // inert after uninstall
        assert_eq!(recorder.windows(), 2);
        assert_eq!(recorder.take_samples().len(), 2);
    }

    #[test]
    fn ndjson_shape_is_one_object_per_line() {
        let samples = vec![Sample {
            windows: 8,
            counters: [("a.b".to_owned(), 2u64)].into_iter().collect(),
            gauges: [("c.d".to_owned(), -1i64)].into_iter().collect(),
        }];
        let text = to_ndjson(&samples);
        assert_eq!(
            text,
            "{\"windows\":8,\"counters\":{\"a.b\":2},\"gauges\":{\"c.d\":-1}}\n"
        );
    }

    #[test]
    fn counter_regressions_clamp_to_zero_and_count_an_anomaly() {
        let _serial = test_lock();
        let recorder = Recorder::new(1);
        let name = "obs.test.regressing_counter".to_owned();
        // Hand-plant snapshots where the counter goes 10 → 4 → 9: a
        // monotonicity violation the delta derivation must absorb
        // without underflow (debug panic / release wrap).
        for (windows, value) in [(1u64, 10u64), (2, 4), (3, 9)] {
            recorder
                .samples
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(RawSample {
                    windows,
                    counters: [(name.clone(), value)].into_iter().collect(),
                    gauges: BTreeMap::new(),
                });
        }
        let before = crate::metrics::snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == "obs.trajectory.anomalies_total")
            .map_or(0, |(_, v)| *v);
        let samples = recorder.take_samples();
        let deltas: Vec<u64> = samples.iter().map(|s| s.counters[&name]).collect();
        assert_eq!(
            deltas,
            vec![10, 0, 5],
            "regression clamps, recovery resumes"
        );
        let after = crate::metrics::snapshot()
            .counters
            .iter()
            .find(|(n, _)| n == "obs.trajectory.anomalies_total")
            .map_or(0, |(_, v)| *v);
        assert_eq!(after - before, 1, "one regressing interval, one anomaly");
    }

    #[test]
    fn every_zero_clamps_to_one() {
        let recorder = Recorder::new(0);
        recorder.tick();
        assert_eq!(recorder.take_samples().len(), 1);
    }
}
