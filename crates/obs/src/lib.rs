//! # mpdf-obs — std-only tracing and metrics for the detection pipeline
//!
//! The campaign harness fans detection work out over worker threads
//! (`mpdf-par`), and the pipeline stages it runs — μ_k extraction
//! (Eq. 9–11), subcarrier weighting (Eq. 12–15), MUSIC scans
//! (Eq. 16–17) — were previously opaque. This crate makes them
//! observable without perturbing them:
//!
//! - [`trace`] — a lightweight span/event core: a thread-local span
//!   stack, monotonic [`std::time::Instant`] timing and a pluggable
//!   [`trace::Subscriber`]. With no subscriber installed (the default)
//!   the entire span path costs a couple of relaxed atomic loads.
//!   Bundled subscribers: [`trace::NdjsonWriter`] (one JSON object per
//!   line, for `repro --trace`) and [`trace::RingBuffer`] (bounded
//!   in-memory event ring, for tests and programmatic inspection).
//! - [`metrics`] — a process-wide registry of counters, gauges and
//!   fixed-bucket histograms, all updated lock-free through atomics,
//!   with p50/p95/p99 summaries and a JSON snapshot exporter
//!   (`OBS_metrics.json`, the same spirit as `BENCH_*.json`).
//! - [`profile`] — the read side: reconstructs per-thread span trees
//!   from event streams (ring or NDJSON), attributes self/total time,
//!   extracts the critical path and renders collapsed stacks plus a
//!   deterministic hotspot table (`cargo xtask trace-report`).
//! - [`trajectory`] — windowed metric time series: samples registry
//!   deltas every K processed windows (deterministic window counts, not
//!   wall-clock) into NDJSON (`repro --trajectory`).
//! - `allocs` (feature `alloc-count`) — a counting global allocator
//!   with thread-local stage scopes, attributing allocations/bytes to
//!   the active [`stage!`] and publishing `obs.alloc.*` counters; zero
//!   overhead (and no `unsafe` compiled) when the feature is off.
//!
//! ## Determinism contract
//!
//! Instrumentation is strictly write-only with respect to the pipeline:
//! nothing in this crate feeds back into detection math, RNG streams or
//! scheduling, so an instrumented run produces bit-identical scores,
//! decisions, stdout and CSV artifacts to an uninstrumented one, at any
//! thread count. Only the observability artifacts themselves (trace
//! files, metric values) differ run to run.
//!
//! ## Usage
//!
//! ```
//! // A pipeline stage: one span + one ns histogram, enabled on demand.
//! fn stage_under_test() {
//!     let _stage = mpdf_obs::stage!("docs.example_stage");
//!     // ... work ...
//! }
//!
//! mpdf_obs::metrics::enable_timing();
//! stage_under_test();
//! mpdf_obs::counter!("docs.example_total").inc();
//! let snapshot = mpdf_obs::metrics::snapshot();
//! assert!(snapshot.to_json().contains("docs.example_stage"));
//! mpdf_obs::metrics::disable_timing();
//! ```

// The counting global allocator (feature `alloc-count`) is the one
// place that needs `unsafe`; every other configuration keeps the
// crate-wide ban.
#![cfg_attr(not(feature = "alloc-count"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-count", deny(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "alloc-count")]
pub mod allocs;
pub mod metrics;
pub mod profile;
pub mod trace;
pub mod trajectory;

pub use metrics::{Counter, Gauge, Histogram, Snapshot};
pub use trace::{SpanEvent, SpanKind, Subscriber};

/// Opens a stage scope: a tracing span plus (when
/// [`metrics::enable_timing`] is active) an elapsed-nanoseconds record
/// into the histogram of the same name.
///
/// Bind the result or the stage closes immediately:
///
/// ```
/// let _stage = mpdf_obs::stage!("docs.macro_stage");
/// ```
///
/// The histogram handle is resolved once per call site and cached in a
/// hidden `OnceLock`, so the steady-state disabled cost is two relaxed
/// atomic loads.
#[macro_export]
macro_rules! stage {
    ($name:literal) => {{
        static STAGE_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        $crate::trace::StageGuard::begin($name, &STAGE_HIST)
    }};
}

/// Resolves (once per call site) and returns the named global
/// [`Counter`].
///
/// ```
/// mpdf_obs::counter!("docs.counter_macro").add(2);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:literal) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::metrics::counter($name))
    }};
}

/// Resolves (once per call site) and returns the named global
/// [`Gauge`].
///
/// ```
/// mpdf_obs::gauge!("docs.gauge_macro").set(3);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:literal) => {{
        static CELL: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        &**CELL.get_or_init(|| $crate::metrics::gauge($name))
    }};
}

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::{Mutex, MutexGuard, PoisonError};

    /// Tests that touch process-global state (the timing flag, the
    /// subscriber slot) serialize on this lock.
    pub(crate) fn lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_resolve_and_cache_handles() {
        let c = counter!("obs.test.macro_counter");
        c.inc();
        c.inc();
        assert!(c.get() >= 2);
        let g = gauge!("obs.test.macro_gauge");
        g.set(-4);
        assert_eq!(g.get(), -4);
        // Same call site returns the same underlying metric.
        let again = counter!("obs.test.macro_counter2");
        again.inc();
        let before = again.get();
        counter!("obs.test.macro_counter2").inc();
        assert!(crate::metrics::counter("obs.test.macro_counter2").get() > before - 1);
    }

    #[test]
    fn stage_macro_is_inert_when_disabled() {
        // No subscriber, no timing: the guard must be a no-op that still
        // compiles and drops cleanly.
        let _stage = stage!("obs.test.disabled_stage");
    }
}
