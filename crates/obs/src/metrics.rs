//! Process-wide metrics registry: counters, gauges and fixed-bucket
//! histograms, all updated lock-free through atomics.
//!
//! Handles are interned in a global registry keyed by name (the only
//! locked path; call sites cache the returned `Arc`, typically through
//! the [`counter!`](crate::counter)/[`gauge!`](crate::gauge)/
//! [`stage!`](crate::stage) macros, so the hot path never touches the
//! registry lock). A [`snapshot`] serializes every metric to JSON with
//! names sorted, suitable for the `OBS_metrics.json` artifact written by
//! `repro --metrics`.
//!
//! Histograms use power-of-two nanosecond buckets (65 of them, covering
//! the full `u64` range) and report p50/p95/p99 by linear interpolation
//! inside the selected bucket, clamped to the recorded `[min, max]` —
//! which makes quantiles exact on single-valued streams and monotone in
//! the quantile argument.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a free-standing counter (registry-less, for tests).
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, active workers).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a free-standing gauge (registry-less, for tests).
    pub fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water marks).
    pub fn set_max(&self, v: i64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        while v > cur {
            match self
                .0
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i - 1]`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket histogram of non-negative integer samples
/// (nanoseconds, by convention, for the pipeline's stage timers).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive `[lower, upper]` value range of bucket `i`.
fn bucket_bounds(i: usize) -> (u64, u64) {
    if i == 0 {
        (0, 0)
    } else if i >= 64 {
        (1 << 63, u64::MAX)
    } else {
        (1 << (i - 1), (1 << i) - 1)
    }
}

impl Histogram {
    /// Creates an empty histogram (free-standing; the pipeline normally
    /// obtains shared ones through [`histogram`]).
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let mut cur = self.min.load(Ordering::Relaxed);
        while v < cur {
            match self
                .min
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
        let mut cur = self.max.load(Ordering::Relaxed);
        while v > cur {
            match self
                .max
                .compare_exchange_weak(cur, v, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy of the histogram state.
    ///
    /// Fields are loaded individually with relaxed ordering; a snapshot
    /// taken concurrently with `record` calls may be off by the in-flight
    /// samples, which is fine for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let min = if count == 0 {
            0
        } else {
            self.min.load(Ordering::Relaxed)
        };
        let max = self.max.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| estimate_quantile(&buckets, count, min, max, q);
        HistogramSnapshot {
            count,
            sum,
            min,
            max,
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }

    /// Quantile estimate in `[0, 1]`; `None` on an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let snap = self.snapshot();
        if snap.count == 0 {
            return None;
        }
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Some(estimate_quantile(
            &buckets, snap.count, snap.min, snap.max, q,
        ))
    }
}

/// Interpolated bucket quantile, clamped to the recorded `[min, max]`.
fn estimate_quantile(buckets: &[u64], count: u64, min: u64, max: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    if min >= max {
        return min as f64;
    }
    let rank = q.clamp(0.0, 1.0) * count as f64;
    let mut cum = 0.0f64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let c = c as f64;
        if cum + c >= rank {
            let (lo, hi) = bucket_bounds(i);
            let frac = ((rank - cum) / c).clamp(0.0, 1.0);
            let v = lo as f64 + frac * (hi - lo) as f64;
            return v.clamp(min as f64, max as f64);
        }
        cum += c;
    }
    max as f64
}

/// Exported histogram summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (ns for stage timers).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median estimate.
    pub p50: f64,
    /// 95th-percentile estimate.
    pub p95: f64,
    /// 99th-percentile estimate.
    pub p99: f64,
}

/// The process-wide metric registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<M: Default>(map: &Mutex<BTreeMap<String, Arc<M>>>, name: &str) -> Arc<M> {
    let mut map = map.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(existing) = map.get(name) {
        return Arc::clone(existing);
    }
    let made = Arc::new(M::default());
    map.insert(name.to_owned(), Arc::clone(&made));
    made
}

impl Registry {
    /// Fetches (or creates) the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// Fetches (or creates) the named gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// Fetches (or creates) the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Point-in-time copy of every registered metric, names sorted.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// The global registry every convenience function operates on.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Fetches (or creates) a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Fetches (or creates) a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Fetches (or creates) a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

static TIMING: AtomicBool = AtomicBool::new(false);

/// Turns on stage timers ([`stage!`](crate::stage) starts reading the
/// clock and recording into histograms). Counters and gauges are always
/// live; only the `Instant`-based timing is gated.
pub fn enable_timing() {
    TIMING.store(true, Ordering::Relaxed);
}

/// Turns stage timers back off.
pub fn disable_timing() {
    TIMING.store(false, Ordering::Relaxed);
}

/// Whether stage timers are recording.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// Point-in-time copy of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

/// A serializable copy of every metric, names sorted.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → summary.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

/// Escapes a string for a JSON string literal.
pub(crate) fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Snapshot {
    /// Serializes the snapshot as a stable, human-readable JSON object
    /// (`{"counters": {...}, "gauges": {...}, "histograms": {...}}`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"counters\": {");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            out.push_str(&format!("\": {value}"));
        }
        out.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            out.push_str(&format!("\": {value}"));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str("    \"");
            escape_json(name, &mut out);
            out.push_str(&format!(
                "\": {{\"count\": {}, \"sum_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \
                 \"p50_ns\": {:.1}, \"p95_ns\": {:.1}, \"p99_ns\": {:.1}}}",
                h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
            ));
        }
        out.push_str("\n  }\n}\n");
        out
    }
}

/// Writes the global registry's snapshot as JSON to `path`
/// (`OBS_metrics.json` by convention).
///
/// # Errors
/// Propagates filesystem errors.
pub fn write_json(path: &Path) -> io::Result<()> {
    std::fs::write(path, snapshot().to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.sub(3);
        g.add(1);
        assert_eq!(g.get(), 8);
        g.set_max(5);
        assert_eq!(g.get(), 8, "set_max must not lower the gauge");
        g.set_max(12);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn bucket_index_and_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= hi, "bucket {i}");
            assert_eq!(bucket_index(lo), i, "lower bound of bucket {i}");
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
        }
        // Adjacent buckets tile without gaps.
        for i in 1..HISTOGRAM_BUCKETS {
            let (_, prev_hi) = bucket_bounds(i - 1);
            let (lo, _) = bucket_bounds(i);
            assert_eq!(prev_hi + 1, lo, "gap between buckets {} and {i}", i - 1);
        }
    }

    #[test]
    fn histogram_single_value_quantiles_are_exact() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(1234);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1234);
        assert_eq!(s.max, 1234);
        assert_eq!(s.p50, 1234.0);
        assert_eq!(s.p95, 1234.0);
        assert_eq!(s.p99, 1234.0);
    }

    #[test]
    fn histogram_quantiles_track_spread_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert!(s.p50 >= 1.0 && s.p50 <= 1000.0);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p99 <= s.max as f64);
        // The median of 1..=1000 lives in bucket [512, 1023]; the
        // interpolation cannot wander to the extremes.
        assert!(s.p50 > 100.0 && s.p50 < 1000.0, "p50 = {}", s.p50);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.p50, 0.0);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(r.counter("y").get(), 0);
        r.gauge("g").set(7);
        r.histogram("h").record(5);
        let snap = r.snapshot();
        assert_eq!(
            snap.counters,
            vec![("x".to_owned(), 1), ("y".to_owned(), 0)]
        );
        assert_eq!(snap.gauges, vec![("g".to_owned(), 7)]);
        assert_eq!(snap.histograms.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }

    #[test]
    fn snapshot_json_is_well_formed_and_sorted() {
        let r = Registry::default();
        r.counter("b.total").add(2);
        r.counter("a.total").add(1);
        r.gauge("depth").set(-3);
        r.histogram("stage").record(100);
        let json = r.snapshot().to_json();
        let a = json.find("\"a.total\": 1").expect("a.total");
        let b = json.find("\"b.total\": 2").expect("b.total");
        assert!(a < b, "names must be sorted:\n{json}");
        assert!(json.contains("\"depth\": -3"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("\"p50_ns\": 100.0"));
        // Balanced braces (a cheap well-formedness proxy without a JSON
        // parser in the dependency-free workspace).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn json_escaping_handles_special_chars() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\te\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001");
    }

    #[test]
    fn timing_flag_toggles() {
        let _serial = crate::testutil::lock();
        enable_timing();
        assert!(timing_enabled());
        disable_timing();
        assert!(!timing_enabled());
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = Arc::new(Histogram::new());
        let c = Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for t in 0..4 {
                let h = Arc::clone(&h);
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 3999);
    }
}
