//! Feature-gated allocation accounting: a counting [`GlobalAlloc`]
//! wrapper plus thread-local stage scopes that attribute every
//! allocation to the innermost active [`stage!`](crate::stage).
//!
//! Compiled only with the `alloc-count` feature — the default build
//! contains no `unsafe` and pays nothing. A binary opts in twice:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: mpdf_obs::allocs::CountingAllocator =
//!     mpdf_obs::allocs::CountingAllocator;
//! // ...
//! mpdf_obs::allocs::enable();            // start attributing
//! run_pipeline();
//! mpdf_obs::allocs::publish();           // obs.alloc.* counters
//! ```
//!
//! Even with the allocator installed, accounting is off until
//! [`enable`] — the hot path is then a single relaxed load. The
//! allocator itself only reads a `const`-initialized thread-local and
//! touches atomics: it never allocates, locks, or panics, so it cannot
//! re-enter itself or deadlock inside another allocation. Stage cells
//! are interned (leaked) outside the allocator path, in
//! [`StageScope::enter`].
//!
//! Accounting counts `alloc`/`alloc_zeroed`/`realloc` calls and
//! requested bytes. Frees are not tracked: the value here is "which
//! stage allocates how much", not a live-heap profile.

// The one unsafe item in the crate: forwarding the GlobalAlloc contract
// to `System`. Every pointer and layout is passed through untouched.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

use crate::metrics;

/// Per-stage attribution cell. Interned per stage name and leaked, so
/// the allocator path can hold `&'static` references without locking.
pub struct StageCell {
    name: &'static str,
    allocs: AtomicU64,
    bytes: AtomicU64,
    published_allocs: AtomicU64,
    published_bytes: AtomicU64,
}

impl StageCell {
    const fn new(name: &'static str) -> StageCell {
        StageCell {
            name,
            allocs: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            published_allocs: AtomicU64::new(0),
            published_bytes: AtomicU64::new(0),
        }
    }

    /// Stage name this cell attributes to.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Allocations attributed so far.
    #[must_use]
    pub fn allocs(&self) -> u64 {
        self.allocs.load(Ordering::Relaxed)
    }

    /// Bytes attributed so far.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static TOTAL: StageCell = StageCell::new("total");
static UNATTRIBUTED: StageCell = StageCell::new("unattributed");

thread_local! {
    // `const`-initialized so the first read in the allocator path can
    // never itself allocate (a lazy initializer would recurse).
    static CURRENT: Cell<Option<&'static StageCell>> = const { Cell::new(None) };
}

fn stage_map() -> &'static Mutex<BTreeMap<&'static str, &'static StageCell>> {
    static MAP: OnceLock<Mutex<BTreeMap<&'static str, &'static StageCell>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Interns (leaking) the attribution cell for a stage name. Called from
/// scope entry, never from inside the allocator.
fn intern(name: &'static str) -> &'static StageCell {
    let mut map = stage_map().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(cell) = map.get(name) {
        return cell;
    }
    let cell: &'static StageCell = Box::leak(Box::new(StageCell::new(name)));
    map.insert(name, cell);
    cell
}

/// Starts attributing allocations to stages. Idempotent.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Stops attributing (the allocator reverts to pure pass-through).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether attribution is currently on.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// RAII stage scope: while alive (and accounting is [`enabled`]),
/// allocations on this thread are attributed to `name`. Nested scopes
/// attribute to the innermost stage; the previous stage is restored on
/// drop. Embedded in [`StageGuard`](crate::trace::StageGuard), so every
/// `stage!` call site gets attribution for free.
pub struct StageScope {
    prev: Option<&'static StageCell>,
    active: bool,
}

impl StageScope {
    /// Enters a stage scope; a no-op unless accounting is enabled.
    #[must_use]
    pub fn enter(name: &'static str) -> StageScope {
        if !enabled() {
            return StageScope {
                prev: None,
                active: false,
            };
        }
        let cell = intern(name);
        // `try_with` so scopes created during thread teardown degrade to
        // no-ops instead of aborting.
        match CURRENT.try_with(|current| current.replace(Some(cell))) {
            Ok(prev) => StageScope { prev, active: true },
            Err(_) => StageScope {
                prev: None,
                active: false,
            },
        }
    }
}

impl Drop for StageScope {
    fn drop(&mut self) {
        if self.active {
            let _ = CURRENT.try_with(|current| current.set(self.prev));
        }
    }
}

/// The allocator-path record: relaxed atomics only, no locks, no
/// allocation, no panic paths.
#[inline]
fn record(size: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    let bytes = size as u64;
    TOTAL.allocs.fetch_add(1, Ordering::Relaxed);
    TOTAL.bytes.fetch_add(bytes, Ordering::Relaxed);
    let cell = match CURRENT.try_with(Cell::get) {
        Ok(Some(cell)) => cell,
        _ => &UNATTRIBUTED,
    };
    cell.allocs.fetch_add(1, Ordering::Relaxed);
    cell.bytes.fetch_add(bytes, Ordering::Relaxed);
}

/// Counting pass-through over the [`System`] allocator. Install with
/// `#[global_allocator]` in the binary that wants attribution.
pub struct CountingAllocator;

// SAFETY: every method forwards ptr/layout verbatim to `System`, which
// upholds the GlobalAlloc contract; the bookkeeping beforehand touches
// only atomics and a const-initialized thread-local.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        record(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        record(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

/// Point-in-time copy of every attribution cell (total, unattributed,
/// then stages name-sorted) as `(name, allocs, bytes)`.
#[must_use]
pub fn stage_totals() -> Vec<(&'static str, u64, u64)> {
    let mut out = vec![
        ("total", TOTAL.allocs(), TOTAL.bytes()),
        ("unattributed", UNATTRIBUTED.allocs(), UNATTRIBUTED.bytes()),
    ];
    let map = stage_map().lock().unwrap_or_else(PoisonError::into_inner);
    for (name, cell) in map.iter() {
        out.push((name, cell.allocs(), cell.bytes()));
    }
    out
}

fn publish_cell(cell: &StageCell, prefix: &str) {
    let allocs = cell.allocs();
    let bytes = cell.bytes();
    let prev_allocs = cell.published_allocs.swap(allocs, Ordering::Relaxed);
    let prev_bytes = cell.published_bytes.swap(bytes, Ordering::Relaxed);
    metrics::counter(&format!("{prefix}.allocs_total")).add(allocs.saturating_sub(prev_allocs));
    metrics::counter(&format!("{prefix}.bytes_total")).add(bytes.saturating_sub(prev_bytes));
}

/// Publishes attribution into the metrics registry: the process totals
/// land on the registered `obs.alloc.allocs_total` /
/// `obs.alloc.bytes_total` / `obs.alloc.unattributed.*` counters, and
/// each stage on dynamic `obs.alloc.<stage>.{allocs,bytes}_total`
/// counters (same convention as `eval.case<N>.*`). Incremental:
/// repeated calls add only the delta since the last publish.
pub fn publish() {
    // Literal call sites so the metric-registry lint covers the names;
    // the deltas themselves go through `publish_cell`.
    crate::counter!("obs.alloc.allocs_total").add(0);
    crate::counter!("obs.alloc.bytes_total").add(0);
    crate::counter!("obs.alloc.unattributed.allocs_total").add(0);
    crate::counter!("obs.alloc.unattributed.bytes_total").add(0);
    publish_cell(&TOTAL, "obs.alloc");
    publish_cell(&UNATTRIBUTED, "obs.alloc.unattributed");
    let cells: Vec<&'static StageCell> = {
        let map = stage_map().lock().unwrap_or_else(PoisonError::into_inner);
        map.values().copied().collect()
    };
    for cell in cells {
        publish_cell(cell, &format!("obs.alloc.{}", cell.name));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::lock as test_lock;

    #[test]
    fn scope_is_inert_when_disabled() {
        let _serial = test_lock();
        disable();
        let scope = StageScope::enter("obs.test.alloc_inert");
        assert!(!scope.active);
        drop(scope);
        // Not interned: no cell appears for the name.
        assert!(!stage_totals()
            .iter()
            .any(|(name, _, _)| *name == "obs.test.alloc_inert"));
    }

    #[test]
    fn nested_scopes_restore_previous_stage() {
        let _serial = test_lock();
        enable();
        let outer = StageScope::enter("obs.test.alloc_outer");
        let outer_cell = CURRENT.with(Cell::get).expect("outer current");
        assert_eq!(outer_cell.name(), "obs.test.alloc_outer");
        {
            let _inner = StageScope::enter("obs.test.alloc_inner");
            let inner_cell = CURRENT.with(Cell::get).expect("inner current");
            assert_eq!(inner_cell.name(), "obs.test.alloc_inner");
        }
        let restored = CURRENT.with(Cell::get).expect("restored current");
        assert_eq!(restored.name(), "obs.test.alloc_outer");
        drop(outer);
        disable();
    }

    #[test]
    fn record_attributes_to_current_stage() {
        let _serial = test_lock();
        enable();
        let scope = StageScope::enter("obs.test.alloc_record");
        record(64);
        record(16);
        drop(scope);
        record(8); // no scope: unattributed
        disable();
        let totals = stage_totals();
        let get = |wanted: &str| {
            totals
                .iter()
                .find(|(name, _, _)| *name == wanted)
                .copied()
                .expect("cell present")
        };
        let (_, allocs, bytes) = get("obs.test.alloc_record");
        assert_eq!(allocs, 2);
        assert_eq!(bytes, 80);
        let (_, una, unb) = get("unattributed");
        assert!(una >= 1 && unb >= 8);
        let (_, ta, tb) = get("total");
        assert!(ta >= 3 && tb >= 88);
    }

    #[test]
    fn publish_is_incremental() {
        let _serial = test_lock();
        enable();
        {
            let _scope = StageScope::enter("obs.test.alloc_publish");
            record(100);
        }
        disable();
        publish();
        let first = metrics::counter("obs.alloc.obs.test.alloc_publish.bytes_total").get();
        assert!(first >= 100);
        publish(); // nothing new recorded: no double counting
        let second = metrics::counter("obs.alloc.obs.test.alloc_publish.bytes_total").get();
        assert_eq!(first, second);
    }
}
