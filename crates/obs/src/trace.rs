//! Span/event tracing core: thread-local span stacks, monotonic
//! timestamps, and a pluggable [`Subscriber`].
//!
//! With no subscriber installed (the default) span entry/exit costs a
//! couple of relaxed atomic loads — cheap enough to leave the
//! [`stage!`](crate::stage) call sites compiled into release builds.
//! Installing a subscriber ([`install`]) flips a process-wide flag and
//! every span/instant event is delivered to it, tagged with span name,
//! parent span, nesting depth, a small per-thread id, and nanoseconds
//! since the first event of the process.
//!
//! Two subscribers ship with the crate:
//! - [`NdjsonWriter`] appends one JSON object per event to a file
//!   (`repro --trace <path>`),
//! - [`RingBuffer`] keeps the last N events in memory for tests and
//!   programmatic inspection.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use crate::metrics::{self, Histogram};

/// What a [`SpanEvent`] marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// A span was entered.
    Enter,
    /// A span was exited; `elapsed_ns` holds its duration.
    Exit,
    /// A point-in-time event (no duration).
    Instant,
}

impl SpanKind {
    /// Short lowercase tag used in the NDJSON encoding.
    pub fn tag(self) -> &'static str {
        match self {
            SpanKind::Enter => "enter",
            SpanKind::Exit => "exit",
            SpanKind::Instant => "instant",
        }
    }
}

/// One tracing event, delivered to the installed [`Subscriber`].
///
/// Span names are `'static` string literals (the [`stage!`](crate::stage)
/// macro only accepts literals), so events are `Copy` and can be buffered
/// without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Enter, exit, or instant.
    pub kind: SpanKind,
    /// Span (or instant-event) name, e.g. `"music.scan"`.
    pub name: &'static str,
    /// Name of the enclosing span on the same thread, if any.
    pub parent: Option<&'static str>,
    /// Nesting depth on this thread (1 = top-level span).
    pub depth: u32,
    /// Small per-thread id (1, 2, … in order of first event).
    pub thread: u64,
    /// Nanoseconds since the process's tracing origin.
    pub ts_ns: u64,
    /// Span duration for [`SpanKind::Exit`], 0 otherwise.
    pub elapsed_ns: u64,
}

impl SpanEvent {
    /// Encodes the event as a single NDJSON line (no trailing newline).
    ///
    /// Names are string literals from source code, so no JSON escaping is
    /// needed beyond what a literal can contain; quotes/backslashes are
    /// escaped anyway for robustness.
    pub fn to_ndjson(&self) -> String {
        let mut out = String::with_capacity(128);
        out.push_str("{\"ev\":\"");
        out.push_str(self.kind.tag());
        out.push_str("\",\"span\":\"");
        push_escaped(&mut out, self.name);
        out.push('"');
        if let Some(parent) = self.parent {
            out.push_str(",\"parent\":\"");
            push_escaped(&mut out, parent);
            out.push('"');
        }
        out.push_str(&format!(
            ",\"depth\":{},\"thread\":{},\"ts_ns\":{}",
            self.depth, self.thread, self.ts_ns
        ));
        if self.kind == SpanKind::Exit {
            out.push_str(&format!(",\"elapsed_ns\":{}", self.elapsed_ns));
        }
        out.push('}');
        out
    }
}

fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
}

/// Receives tracing events. Implementations must be cheap and
/// non-blocking where possible: they run inline on the pipeline's
/// threads.
pub trait Subscriber: Send + Sync {
    /// Called once per span enter/exit/instant.
    fn event(&self, event: &SpanEvent);
    /// Flushes any buffered output (called by [`flush`] and on
    /// [`uninstall`]).
    fn flush(&self) {}
}

static TRACING: AtomicBool = AtomicBool::new(false);

fn subscriber_slot() -> &'static Mutex<Option<Arc<dyn Subscriber>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<dyn Subscriber>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Installs `sub` as the process-wide subscriber and enables tracing.
/// Replaces (and returns) any previously installed subscriber.
///
/// The first install also chains a panic hook that flushes the
/// subscriber, so a run aborted by a worker panic still leaves an
/// analyzable trace file instead of a truncated buffer.
pub fn install(sub: Arc<dyn Subscriber>) -> Option<Arc<dyn Subscriber>> {
    install_panic_flush();
    let mut slot = subscriber_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    let old = slot.replace(sub);
    TRACING.store(true, Ordering::Release);
    old
}

/// Chains a process-wide panic hook (once) that flushes the installed
/// subscriber before the default hook runs. `flush` only takes the
/// subscriber slot and writer locks, both poison-tolerant, so flushing
/// from the panicking thread is safe.
fn install_panic_flush() {
    static HOOK: std::sync::Once = std::sync::Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            flush();
            prev(info);
        }));
    });
}

/// Disables tracing, flushes and removes the current subscriber
/// (returned so callers can keep inspecting it).
pub fn uninstall() -> Option<Arc<dyn Subscriber>> {
    TRACING.store(false, Ordering::Release);
    let old = subscriber_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(sub) = &old {
        sub.flush();
    }
    old
}

/// Whether a subscriber is installed (the span fast-path gate).
#[inline]
pub fn enabled() -> bool {
    TRACING.load(Ordering::Acquire)
}

/// Flushes the installed subscriber, if any.
pub fn flush() {
    let sub = subscriber_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(sub) = sub {
        sub.flush();
    }
}

fn dispatch(event: &SpanEvent) {
    let sub = subscriber_slot()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if let Some(sub) = sub {
        sub.event(event);
    }
}

/// Monotonic origin shared by every thread; the first caller pins it.
fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

/// Nanoseconds since the tracing origin (saturates at `u64::MAX` after
/// ~584 years of uptime).
pub fn now_ns() -> u64 {
    let nanos = origin().elapsed().as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Small per-thread id: 1, 2, … in order of first tracing activity.
pub fn thread_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != 0 {
            id
        } else {
            let id = NEXT.fetch_add(1, Ordering::Relaxed);
            cell.set(id);
            id
        }
    })
}

/// Emits a point-in-time event under the current span, if tracing is
/// enabled; a no-op otherwise.
pub fn instant(name: &'static str) {
    if !enabled() {
        return;
    }
    let (parent, depth) = SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        (stack.last().copied(), stack.len() as u32)
    });
    dispatch(&SpanEvent {
        kind: SpanKind::Instant,
        name,
        parent,
        depth,
        thread: thread_id(),
        ts_ns: now_ns(),
        elapsed_ns: 0,
    });
}

/// RAII scope produced by the [`stage!`](crate::stage) macro: a tracing
/// span plus (when [`metrics::enable_timing`] is on) an
/// elapsed-nanoseconds histogram record.
///
/// The guard captures whether tracing/timing were enabled at entry, so a
/// subscriber installed mid-span never sees an exit without its enter.
#[must_use = "binds a stage scope; dropping it immediately closes the stage"]
pub struct StageGuard {
    name: &'static str,
    start: Option<Instant>,
    hist: Option<Arc<Histogram>>,
    traced: bool,
    /// Attributes allocations inside this stage to its name (feature
    /// `alloc-count`; a no-op unless [`crate::allocs::enable`] ran).
    /// Declared last so it closes after the exit event is dispatched.
    #[cfg(feature = "alloc-count")]
    _alloc: crate::allocs::StageScope,
}

impl StageGuard {
    /// Opens a stage. `cell` is the per-call-site histogram cache the
    /// macro supplies; it is only populated when timing is enabled.
    pub fn begin(name: &'static str, cell: &'static OnceLock<Arc<Histogram>>) -> StageGuard {
        let traced = enabled();
        let timed = metrics::timing_enabled();
        if !traced && !timed {
            return StageGuard {
                name,
                start: None,
                hist: None,
                traced: false,
                #[cfg(feature = "alloc-count")]
                _alloc: crate::allocs::StageScope::enter(name),
            };
        }
        let start = Instant::now();
        let hist = timed.then(|| Arc::clone(cell.get_or_init(|| metrics::histogram(name))));
        if traced {
            let (parent, depth) = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let parent = stack.last().copied();
                stack.push(name);
                (parent, stack.len() as u32)
            });
            dispatch(&SpanEvent {
                kind: SpanKind::Enter,
                name,
                parent,
                depth,
                thread: thread_id(),
                ts_ns: now_ns(),
                elapsed_ns: 0,
            });
        }
        StageGuard {
            name,
            start: Some(start),
            hist,
            traced,
            #[cfg(feature = "alloc-count")]
            _alloc: crate::allocs::StageScope::enter(name),
        }
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let elapsed = start.elapsed();
        let elapsed_ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        if let Some(hist) = &self.hist {
            hist.record(elapsed_ns);
        }
        if self.traced {
            let (parent, depth) = SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Pop our own frame; tolerate a mismatched stack (e.g. a
                // guard moved across threads) by searching from the top.
                if stack.last() == Some(&self.name) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|n| *n == self.name) {
                    stack.remove(pos);
                }
                (stack.last().copied(), stack.len() as u32 + 1)
            });
            dispatch(&SpanEvent {
                kind: SpanKind::Exit,
                name: self.name,
                parent,
                depth,
                thread: thread_id(),
                ts_ns: now_ns(),
                elapsed_ns,
            });
        }
    }
}

/// Subscriber that appends one JSON object per event to a file —
/// newline-delimited JSON, the `repro --trace <path>` backend.
pub struct NdjsonWriter {
    out: Mutex<BufWriter<File>>,
}

impl NdjsonWriter {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn create(path: &Path) -> io::Result<NdjsonWriter> {
        let file = File::create(path)?;
        Ok(NdjsonWriter {
            out: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl Subscriber for NdjsonWriter {
    fn event(&self, event: &SpanEvent) {
        let mut line = event.to_ndjson();
        line.push('\n');
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // A full disk mid-trace must not take down the pipeline; the
        // final flush reports persistent failures via `flush`.
        let _ = out.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = out.flush();
    }
}

impl Drop for NdjsonWriter {
    /// Flushes buffered events so a writer dropped without a clean
    /// [`uninstall`] (aborted run, test teardown) still persists its
    /// tail. `BufWriter`'s own drop would flush too, but silently; doing
    /// it here keeps the behavior explicit and poison-tolerant.
    fn drop(&mut self) {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = out.flush();
    }
}

/// Subscriber keeping the most recent `capacity` events in memory.
pub struct RingBuffer {
    events: Mutex<VecDeque<SpanEvent>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl RingBuffer {
    /// Creates a ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingBuffer {
        RingBuffer {
            events: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
        }
    }

    /// Copies out the buffered events, oldest first.
    pub fn events(&self) -> Vec<SpanEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .copied()
            .collect()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Subscriber for RingBuffer {
    fn event(&self, event: &SpanEvent) {
        let evicted = {
            let mut events = self.events.lock().unwrap_or_else(PoisonError::into_inner);
            let evicted = events.len() == self.capacity;
            if evicted {
                events.pop_front();
            }
            events.push_back(*event);
            evicted
        };
        // Counted outside the ring lock: interning the counter takes the
        // registry lock, and profile reports read this to warn that the
        // reconstruction is built from a truncated stream.
        if evicted {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            crate::counter!("obs.trace.dropped_events_total").inc();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::lock as test_lock;

    fn stage_for_test(name: &'static str) -> StageGuard {
        // Mirrors the `stage!` macro with a leaked per-call cell, since
        // tests want distinct cells per invocation.
        let cell: &'static OnceLock<Arc<Histogram>> = Box::leak(Box::new(OnceLock::new()));
        StageGuard::begin(name, cell)
    }

    #[test]
    fn disabled_guard_is_inert() {
        let _serial = test_lock();
        uninstall();
        metrics::disable_timing();
        let guard = stage_for_test("trace.test.inert");
        assert!(guard.start.is_none());
        drop(guard);
        // The histogram was never interned.
        let snap = metrics::snapshot();
        assert!(snap
            .histograms
            .iter()
            .all(|(name, _)| name != "trace.test.inert"));
    }

    #[test]
    fn ring_buffer_captures_nested_spans() {
        let _serial = test_lock();
        let ring = Arc::new(RingBuffer::new(64));
        install(Arc::clone(&ring) as Arc<dyn Subscriber>);
        {
            let _outer = stage_for_test("trace.test.outer");
            {
                let _inner = stage_for_test("trace.test.inner");
            }
            instant("trace.test.tick");
        }
        uninstall();
        let events: Vec<SpanEvent> = ring
            .events()
            .into_iter()
            .filter(|e| e.name.starts_with("trace.test."))
            .collect();
        assert_eq!(events.len(), 5, "{events:?}");
        assert_eq!(events[0].kind, SpanKind::Enter);
        assert_eq!(events[0].name, "trace.test.outer");
        assert_eq!(events[0].parent, None);
        assert_eq!(events[1].name, "trace.test.inner");
        assert_eq!(events[1].parent, Some("trace.test.outer"));
        assert_eq!(events[1].depth, 2);
        assert_eq!(events[2].kind, SpanKind::Exit);
        assert_eq!(events[2].name, "trace.test.inner");
        assert_eq!(events[3].kind, SpanKind::Instant);
        assert_eq!(events[3].name, "trace.test.tick");
        assert_eq!(events[3].parent, Some("trace.test.outer"));
        assert_eq!(events[4].kind, SpanKind::Exit);
        assert_eq!(events[4].name, "trace.test.outer");
        // Exit timestamps do not precede enters.
        assert!(events[4].ts_ns >= events[0].ts_ns);
    }

    #[test]
    fn timing_records_into_named_histogram() {
        let _serial = test_lock();
        uninstall();
        metrics::enable_timing();
        {
            let _stage = stage_for_test("trace.test.timed");
        }
        metrics::disable_timing();
        let hist = metrics::histogram("trace.test.timed");
        assert!(hist.count() >= 1);
    }

    #[test]
    fn ring_buffer_bounds_capacity() {
        let ring = RingBuffer::new(3);
        for i in 0..10u64 {
            ring.event(&SpanEvent {
                kind: SpanKind::Instant,
                name: "x",
                parent: None,
                depth: 0,
                thread: 1,
                ts_ns: i,
                elapsed_ns: 0,
            });
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].ts_ns, 7);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn ndjson_encoding_shape() {
        let ev = SpanEvent {
            kind: SpanKind::Exit,
            name: "music.scan",
            parent: Some("eval.window"),
            depth: 3,
            thread: 2,
            ts_ns: 1000,
            elapsed_ns: 250,
        };
        assert_eq!(
            ev.to_ndjson(),
            "{\"ev\":\"exit\",\"span\":\"music.scan\",\"parent\":\"eval.window\",\
             \"depth\":3,\"thread\":2,\"ts_ns\":1000,\"elapsed_ns\":250}"
        );
        let enter = SpanEvent {
            kind: SpanKind::Enter,
            parent: None,
            ..ev
        };
        let line = enter.to_ndjson();
        assert!(!line.contains("parent"));
        assert!(!line.contains("elapsed_ns"));
    }

    #[test]
    fn ndjson_writer_appends_lines() {
        let _serial = test_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mpdf_obs_trace_test_{}.ndjson", std::process::id()));
        let writer = NdjsonWriter::create(&path).expect("create trace file");
        install(Arc::new(writer));
        {
            let _stage = stage_for_test("trace.test.file");
        }
        uninstall();
        let contents = std::fs::read_to_string(&path).expect("read trace file");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = contents
            .lines()
            .filter(|l| l.contains("trace.test.file"))
            .collect();
        assert_eq!(lines.len(), 2, "{contents}");
        assert!(lines[0].contains("\"ev\":\"enter\""));
        assert!(lines[1].contains("\"ev\":\"exit\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn thread_ids_are_stable_per_thread() {
        let a = thread_id();
        let b = thread_id();
        assert_eq!(a, b);
        assert!(a >= 1);
        let other = std::thread::spawn(thread_id).join().expect("join");
        assert_ne!(other, 0);
    }
}
