//! Span-stream analysis: reconstructs per-thread span trees from
//! [`SpanEvent`] streams, attributes self/total time to stages, extracts
//! the critical path of a run and renders flamegraph-compatible
//! collapsed stacks plus a deterministic hotspot table.
//!
//! The producer side ([`crate::trace`]) is write-only: it emits a flat
//! NDJSON/ring stream of enter/exit/instant events and never looks back.
//! This module is the read side — `cargo xtask trace-report` feeds it a
//! `repro --trace` capture, tests feed it a [`RingBuffer`]'s contents.
//!
//! Reconstruction is **total**: malformed streams (unbalanced
//! enter/exit, events evicted by a bounded ring, torn final lines from
//! an aborted run, interleaved threads) never panic and never abort the
//! analysis. Every repair is counted in [`Anomalies`] so a report can
//! say "this tree is truncated" instead of silently presenting a partial
//! profile as the truth.
//!
//! [`RingBuffer`]: crate::trace::RingBuffer

use std::collections::BTreeMap;

use crate::trace::{SpanEvent, SpanKind};

/// Owned mirror of [`SpanEvent`], the unit this module analyzes.
///
/// Live events borrow `'static` names; events parsed back from an NDJSON
/// file own their strings. The `parent` field of the wire format is
/// deliberately dropped: nesting is reconstructed from enter/exit order,
/// which stays correct even when single events are missing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Enter, exit, or instant.
    pub kind: SpanKind,
    /// Span (or instant-event) name.
    pub name: String,
    /// Per-thread id from the producer.
    pub thread: u64,
    /// Nanoseconds since the producer's tracing origin.
    pub ts_ns: u64,
    /// Reported span duration (exit events; 0 otherwise).
    pub elapsed_ns: u64,
}

impl From<&SpanEvent> for TraceEvent {
    fn from(ev: &SpanEvent) -> TraceEvent {
        TraceEvent {
            kind: ev.kind,
            name: ev.name.to_owned(),
            thread: ev.thread,
            ts_ns: ev.ts_ns,
            elapsed_ns: ev.elapsed_ns,
        }
    }
}

/// Converts a live event buffer (e.g. [`RingBuffer::events`]) into owned
/// analyzer input.
///
/// [`RingBuffer::events`]: crate::trace::RingBuffer::events
#[must_use]
pub fn from_span_events(events: &[SpanEvent]) -> Vec<TraceEvent> {
    events.iter().map(TraceEvent::from).collect()
}

/// Counts of stream defects tolerated (and repaired) during
/// reconstruction. A truncated or torn trace still yields a tree; these
/// counters are how the report refuses to present it as complete.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Anomalies {
    /// NDJSON lines that did not parse as events (torn final write,
    /// foreign lines).
    pub malformed_lines: u64,
    /// Exit events with no matching enter on the thread's stack —
    /// typically the enter was evicted by a bounded ring.
    pub unmatched_exits: u64,
    /// Spans force-closed because an outer span exited first (a guard
    /// leaked across scopes, or the matching exit was dropped).
    pub mismatched_nesting: u64,
    /// Spans still open when the stream ended (aborted run).
    pub unclosed_spans: u64,
    /// Events the producer itself reported dropped (ring eviction
    /// count), when the caller knows it.
    pub dropped_events: u64,
}

impl Anomalies {
    /// Whether any defect was observed.
    #[must_use]
    pub fn any(&self) -> bool {
        self.total() > 0
    }

    /// Sum of all defect counters.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.malformed_lines
            + self.unmatched_exits
            + self.mismatched_nesting
            + self.unclosed_spans
            + self.dropped_events
    }
}

/// One reconstructed span occurrence with its nested children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Stage name.
    pub name: String,
    /// Span duration in nanoseconds.
    pub total_ns: u64,
    /// Nested spans, in stream order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Self time: own duration minus the children's, saturating at zero
    /// so a malformed stream (child longer than its parent) can never
    /// produce negative attribution. With saturation, the sum of self
    /// times over any subtree never exceeds the subtree root's total.
    #[must_use]
    pub fn self_ns(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.total_ns).sum();
        self.total_ns.saturating_sub(children)
    }
}

/// The reconstructed span forest of one producer thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadTree {
    /// Producer thread id.
    pub thread: u64,
    /// Top-level spans, in stream order.
    pub roots: Vec<SpanNode>,
}

impl ThreadTree {
    /// Sum of root span durations — the thread's attributed busy time.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }
}

/// Per-stage aggregate over every occurrence in the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StageStat {
    /// Stage name.
    pub name: String,
    /// Number of span occurrences.
    pub count: u64,
    /// Sum of span durations (re-entrant stages double-count by design,
    /// like a flamegraph's "total" column).
    pub total_ns: u64,
    /// Sum of self times (never double-counts).
    pub self_ns: u64,
    /// Shortest single occurrence.
    pub min_ns: u64,
    /// Longest single occurrence.
    pub max_ns: u64,
}

/// One hop of the critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalHop {
    /// Stage name.
    pub name: String,
    /// Duration of the chosen occurrence.
    pub total_ns: u64,
    /// Self time of the chosen occurrence.
    pub self_ns: u64,
    /// Nesting depth (0 = root).
    pub depth: u32,
}

/// The complete analysis of one span stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Per-thread span forests, thread id ascending.
    pub threads: Vec<ThreadTree>,
    /// Per-stage aggregates, name ascending.
    pub stages: Vec<StageStat>,
    /// Instant-event counts, name ascending.
    pub instants: Vec<(String, u64)>,
    /// Heaviest root-to-leaf chain (greedy descent by child total).
    pub critical_path: Vec<CriticalHop>,
    /// Stream defects tolerated during reconstruction.
    pub anomalies: Anomalies,
    /// Events consumed (enter + exit + instant).
    pub events: u64,
    /// Stream wall span: max timestamp minus min timestamp.
    pub wall_ns: u64,
}

/// An open span during reconstruction.
struct Open {
    name: String,
    start_ns: u64,
    children: Vec<SpanNode>,
}

impl Open {
    fn close(self, total_ns: u64) -> SpanNode {
        let mut node = SpanNode {
            name: self.name,
            total_ns,
            children: self.children,
        };
        clamp_children(&mut node);
        node
    }
}

/// Caps each child's duration at the parent's remaining budget, in
/// stream order. A malformed stream can report a child (or an
/// unmatched-exit leaf adopted mid-span) longer than its parent; without
/// the cap, that child's *self* time would exceed the parent's *total*
/// and per-stage attribution would sum to more time than was spanned.
/// With it, Σ children ≤ parent total holds at every node, which makes
/// "subtree self-time sum ≤ root total" an invariant (proptest-pinned).
/// Well-formed streams are never altered.
fn clamp_children(node: &mut SpanNode) {
    let mut budget = node.total_ns;
    for child in &mut node.children {
        if child.total_ns > budget {
            child.total_ns = budget;
            // The child's own children were clamped against its old
            // (larger) total; re-establish the invariant below it.
            clamp_children(child);
        }
        budget -= child.total_ns;
    }
}

/// Per-thread reconstruction state.
#[derive(Default)]
struct ThreadState {
    stack: Vec<Open>,
    roots: Vec<SpanNode>,
    last_ts: u64,
}

impl ThreadState {
    /// Attaches a finished node to the innermost open span, or to the
    /// roots when the stack is empty.
    fn attach(&mut self, node: SpanNode) {
        match self.stack.last_mut() {
            Some(open) => open.children.push(node),
            None => self.roots.push(node),
        }
    }
}

/// Reconstructs a profile from an event stream, marking `dropped` events
/// as already lost at the producer (a bounded ring's eviction count).
///
/// Events must be in producer order per thread (which both the NDJSON
/// writer and the ring preserve); threads may interleave arbitrarily.
#[must_use]
pub fn reconstruct_with_dropped(events: &[TraceEvent], dropped: u64) -> Profile {
    let mut threads: BTreeMap<u64, ThreadState> = BTreeMap::new();
    let mut instants: BTreeMap<String, u64> = BTreeMap::new();
    let mut anomalies = Anomalies {
        dropped_events: dropped,
        ..Anomalies::default()
    };
    let mut min_ts = u64::MAX;
    let mut max_ts = 0u64;

    for ev in events {
        min_ts = min_ts.min(ev.ts_ns);
        max_ts = max_ts.max(ev.ts_ns);
        let state = threads.entry(ev.thread).or_default();
        state.last_ts = state.last_ts.max(ev.ts_ns);
        match ev.kind {
            SpanKind::Enter => state.stack.push(Open {
                name: ev.name.clone(),
                start_ns: ev.ts_ns,
                children: Vec::new(),
            }),
            SpanKind::Exit => {
                let duration = |open: &Open| {
                    if ev.elapsed_ns > 0 {
                        ev.elapsed_ns
                    } else {
                        ev.ts_ns.saturating_sub(open.start_ns)
                    }
                };
                if state.stack.last().is_some_and(|o| o.name == ev.name) {
                    // The well-formed case: the exit matches the top.
                    if let Some(open) = state.stack.pop() {
                        let total = duration(&open);
                        state.attach(open.close(total));
                    }
                } else if let Some(pos) = state.stack.iter().rposition(|o| o.name == ev.name) {
                    // The matching enter is buried: force-close the
                    // intervening spans (their exits were lost) at this
                    // exit's timestamp, innermost first.
                    while state.stack.len() > pos + 1 {
                        if let Some(open) = state.stack.pop() {
                            anomalies.mismatched_nesting += 1;
                            let total = ev.ts_ns.saturating_sub(open.start_ns);
                            state.attach(open.close(total));
                        }
                    }
                    if let Some(open) = state.stack.pop() {
                        let total = duration(&open);
                        state.attach(open.close(total));
                    }
                } else {
                    // No enter anywhere on this thread's stack — the
                    // enter was dropped (ring eviction / truncation).
                    // Keep the span as a leaf so its time is not lost.
                    anomalies.unmatched_exits += 1;
                    state.attach(SpanNode {
                        name: ev.name.clone(),
                        total_ns: ev.elapsed_ns,
                        children: Vec::new(),
                    });
                }
            }
            SpanKind::Instant => {
                *instants.entry(ev.name.clone()).or_insert(0) += 1;
            }
        }
    }

    // Close whatever an aborted run left open, at the thread's last
    // observed timestamp.
    let threads: Vec<ThreadTree> = threads
        .into_iter()
        .map(|(thread, mut state)| {
            while let Some(open) = state.stack.pop() {
                anomalies.unclosed_spans += 1;
                let total = state.last_ts.saturating_sub(open.start_ns);
                state.attach(open.close(total));
            }
            ThreadTree {
                thread,
                roots: state.roots,
            }
        })
        .collect();

    let stages = aggregate(&threads);
    let critical_path = critical_path(&threads);
    Profile {
        threads,
        stages,
        instants: instants.into_iter().collect(),
        critical_path,
        anomalies,
        events: events.len() as u64,
        wall_ns: max_ts.saturating_sub(min_ts.min(max_ts)),
    }
}

/// [`reconstruct_with_dropped`] for streams with no producer-side loss.
#[must_use]
pub fn reconstruct(events: &[TraceEvent]) -> Profile {
    reconstruct_with_dropped(events, 0)
}

/// Folds the forests into name-keyed stage aggregates.
fn aggregate(threads: &[ThreadTree]) -> Vec<StageStat> {
    fn visit(node: &SpanNode, acc: &mut BTreeMap<String, StageStat>) {
        let stat = acc.entry(node.name.clone()).or_insert_with(|| StageStat {
            name: node.name.clone(),
            count: 0,
            total_ns: 0,
            self_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        });
        stat.count += 1;
        stat.total_ns += node.total_ns;
        stat.self_ns += node.self_ns();
        stat.min_ns = stat.min_ns.min(node.total_ns);
        stat.max_ns = stat.max_ns.max(node.total_ns);
        for child in &node.children {
            visit(child, acc);
        }
    }
    let mut acc = BTreeMap::new();
    for tree in threads {
        for root in &tree.roots {
            visit(root, &mut acc);
        }
    }
    acc.into_values().collect()
}

/// Greedy heaviest descent: start from the heaviest root across all
/// threads, repeatedly step into the heaviest child. Ties break by name
/// (ascending) so the path is deterministic for a given stream.
fn critical_path(threads: &[ThreadTree]) -> Vec<CriticalHop> {
    let heavier = |a: &SpanNode, b: &SpanNode| {
        (b.total_ns, &a.name) < (a.total_ns, &b.name) // max total, min name
    };
    let mut cursor: Option<&SpanNode> = None;
    for tree in threads {
        for root in &tree.roots {
            if cursor.is_none_or(|best| heavier(root, best)) {
                cursor = Some(root);
            }
        }
    }
    let mut path = Vec::new();
    let mut depth = 0u32;
    while let Some(node) = cursor {
        path.push(CriticalHop {
            name: node.name.clone(),
            total_ns: node.total_ns,
            self_ns: node.self_ns(),
            depth,
        });
        depth += 1;
        cursor = None;
        for child in &node.children {
            if cursor.is_none_or(|best| heavier(child, best)) {
                cursor = Some(child);
            }
        }
    }
    path
}

/// Hotspots: stages ranked by self time descending, name ascending on
/// ties, truncated to `top`.
#[must_use]
pub fn hotspots(profile: &Profile, top: usize) -> Vec<&StageStat> {
    let mut ranked: Vec<&StageStat> = profile.stages.iter().collect();
    ranked.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.name.cmp(&b.name)));
    ranked.truncate(top);
    ranked
}

/// Renders the deterministic hotspot table (the `trace-report` default
/// output). Columns: rank, stage, count, total ms, self ms, self share
/// of the summed self time.
#[must_use]
pub fn hotspot_table(profile: &Profile, top: usize) -> String {
    let total_self: u64 = profile.stages.iter().map(|s| s.self_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<4} {:<32} {:>9} {:>12} {:>12} {:>7}\n",
        "rank", "stage", "count", "total_ms", "self_ms", "self%"
    ));
    for (i, s) in hotspots(profile, top).iter().enumerate() {
        let share = if total_self == 0 {
            0.0
        } else {
            s.self_ns as f64 / total_self as f64 * 100.0
        };
        out.push_str(&format!(
            "{:<4} {:<32} {:>9} {:>12.3} {:>12.3} {:>6.1}%\n",
            i + 1,
            s.name,
            s.count,
            s.total_ns as f64 / 1e6,
            s.self_ns as f64 / 1e6,
            share
        ));
    }
    out
}

/// Renders the critical path, one indented hop per line.
#[must_use]
pub fn critical_path_text(profile: &Profile) -> String {
    let mut out = String::new();
    for hop in &profile.critical_path {
        out.push_str(&format!(
            "{:indent$}{} total {:.3} ms, self {:.3} ms\n",
            "",
            hop.name,
            hop.total_ns as f64 / 1e6,
            hop.self_ns as f64 / 1e6,
            indent = 2 * hop.depth as usize
        ));
    }
    out
}

/// Renders flamegraph-compatible collapsed stacks: one
/// `root;child;leaf <self_ns>` line per distinct stack, merged across
/// threads and occurrences, sorted by stack string. Feed the output to
/// any `flamegraph.pl`-style renderer.
#[must_use]
pub fn collapsed_stacks(profile: &Profile) -> String {
    fn visit(node: &SpanNode, prefix: &str, acc: &mut BTreeMap<String, u64>) {
        let path = if prefix.is_empty() {
            node.name.clone()
        } else {
            format!("{prefix};{}", node.name)
        };
        let self_ns = node.self_ns();
        if self_ns > 0 {
            *acc.entry(path.clone()).or_insert(0) += self_ns;
        }
        for child in &node.children {
            visit(child, &path, acc);
        }
    }
    let mut acc = BTreeMap::new();
    for tree in &profile.threads {
        for root in &tree.roots {
            visit(root, "", &mut acc);
        }
    }
    let mut out = String::new();
    for (stack, self_ns) in &acc {
        out.push_str(&format!("{stack} {self_ns}\n"));
    }
    out
}

/// Serializes the analysis as a stable JSON object (`trace-report
/// --json`): event/anomaly counts, the top-`top` hotspots and the
/// critical path.
#[must_use]
pub fn to_json(profile: &Profile, top: usize) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    out.push_str(&format!(
        "  \"events\": {},\n  \"threads\": {},\n  \"wall_ns\": {},\n",
        profile.events,
        profile.threads.len(),
        profile.wall_ns
    ));
    let a = &profile.anomalies;
    out.push_str(&format!(
        "  \"anomalies\": {{\"malformed_lines\": {}, \"unmatched_exits\": {}, \
         \"mismatched_nesting\": {}, \"unclosed_spans\": {}, \"dropped_events\": {}}},\n",
        a.malformed_lines,
        a.unmatched_exits,
        a.mismatched_nesting,
        a.unclosed_spans,
        a.dropped_events
    ));
    out.push_str("  \"hotspots\": [");
    for (i, s) in hotspots(profile, top).iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"count\": {}, \"total_ns\": {}, \
             \"self_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            json_escaped(&s.name),
            s.count,
            s.total_ns,
            s.self_ns,
            s.min_ns,
            s.max_ns
        ));
    }
    out.push_str("\n  ],\n  \"critical_path\": [");
    for (i, hop) in profile.critical_path.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"stage\": \"{}\", \"depth\": {}, \"total_ns\": {}, \"self_ns\": {}}}",
            json_escaped(&hop.name),
            hop.depth,
            hop.total_ns,
            hop.self_ns
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn json_escaped(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------
// NDJSON parsing (the read side of `SpanEvent::to_ndjson`)
// ---------------------------------------------------------------------

/// Parses an NDJSON trace capture into events plus a malformed-line
/// count. Total: a torn final line (killed process) or foreign garbage
/// is counted and skipped, never fatal. Blank lines are ignored.
#[must_use]
pub fn parse_ndjson(text: &str) -> (Vec<TraceEvent>, u64) {
    let mut events = Vec::new();
    let mut malformed = 0u64;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_event_line(line) {
            Some(ev) => events.push(ev),
            None => malformed += 1,
        }
    }
    (events, malformed)
}

/// Parses one `{"ev":...}` line; `None` on any malformation.
fn parse_event_line(line: &str) -> Option<TraceEvent> {
    let mut rest = line.strip_prefix('{')?.trim_start();
    let mut kind: Option<SpanKind> = None;
    let mut name: Option<String> = None;
    let mut thread: Option<u64> = None;
    let mut ts_ns: Option<u64> = None;
    let mut elapsed_ns = 0u64;
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            if !after.trim().is_empty() {
                return None;
            }
            break;
        }
        let (key, after) = parse_json_string(rest)?;
        rest = after.trim_start().strip_prefix(':')?.trim_start();
        if rest.starts_with('"') {
            let (value, after) = parse_json_string(rest)?;
            match key.as_str() {
                "ev" => {
                    kind = Some(match value.as_str() {
                        "enter" => SpanKind::Enter,
                        "exit" => SpanKind::Exit,
                        "instant" => SpanKind::Instant,
                        _ => return None,
                    });
                }
                "span" => name = Some(value),
                _ => {} // parent and future string fields
            }
            rest = after;
        } else {
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            let value: u64 = rest.get(..end)?.parse().ok()?;
            match key.as_str() {
                "thread" => thread = Some(value),
                "ts_ns" => ts_ns = Some(value),
                "elapsed_ns" => elapsed_ns = value,
                _ => {} // depth and future numeric fields
            }
            rest = rest.get(end..)?;
        }
        rest = rest.trim_start();
        if let Some(after) = rest.strip_prefix(',') {
            rest = after.trim_start();
        }
    }
    Some(TraceEvent {
        kind: kind?,
        name: name?,
        thread: thread?,
        ts_ns: ts_ns?,
        elapsed_ns,
    })
}

/// Parses a leading JSON string literal, returning the unescaped body
/// and the remainder after the closing quote.
fn parse_json_string(s: &str) -> Option<(String, &str)> {
    let rest = s.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, rest.get(i + 1..)?)),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, name: &str, thread: u64, ts_ns: u64, elapsed_ns: u64) -> TraceEvent {
        TraceEvent {
            kind,
            name: name.to_owned(),
            thread,
            ts_ns,
            elapsed_ns,
        }
    }

    /// enter/exit pair helper.
    fn span(name: &str, thread: u64, start: u64, end: u64) -> [TraceEvent; 2] {
        [
            ev(SpanKind::Enter, name, thread, start, 0),
            ev(SpanKind::Exit, name, thread, end, end - start),
        ]
    }

    #[test]
    fn reconstructs_nested_spans_with_self_time() {
        let events = vec![
            ev(SpanKind::Enter, "outer", 1, 0, 0),
            ev(SpanKind::Enter, "inner", 1, 10, 0),
            ev(SpanKind::Exit, "inner", 1, 40, 30),
            ev(SpanKind::Enter, "inner", 1, 50, 0),
            ev(SpanKind::Exit, "inner", 1, 70, 20),
            ev(SpanKind::Exit, "outer", 1, 100, 100),
        ];
        let p = reconstruct(&events);
        assert!(!p.anomalies.any(), "{:?}", p.anomalies);
        assert_eq!(p.threads.len(), 1);
        assert_eq!(p.threads[0].roots.len(), 1);
        let outer = &p.threads[0].roots[0];
        assert_eq!(outer.total_ns, 100);
        assert_eq!(outer.children.len(), 2);
        assert_eq!(outer.self_ns(), 50);
        let stats: BTreeMap<&str, &StageStat> =
            p.stages.iter().map(|s| (s.name.as_str(), s)).collect();
        assert_eq!(stats["inner"].count, 2);
        assert_eq!(stats["inner"].total_ns, 50);
        assert_eq!(stats["inner"].self_ns, 50);
        assert_eq!(stats["inner"].min_ns, 20);
        assert_eq!(stats["inner"].max_ns, 30);
        assert_eq!(stats["outer"].self_ns, 50);
        assert_eq!(p.wall_ns, 100);
    }

    #[test]
    fn interleaved_threads_are_reconstructed_independently() {
        let events = vec![
            ev(SpanKind::Enter, "a", 1, 0, 0),
            ev(SpanKind::Enter, "b", 2, 5, 0),
            ev(SpanKind::Exit, "a", 1, 20, 20),
            ev(SpanKind::Exit, "b", 2, 30, 25),
        ];
        let p = reconstruct(&events);
        assert!(!p.anomalies.any());
        assert_eq!(p.threads.len(), 2);
        assert_eq!(p.threads[0].thread, 1);
        assert_eq!(p.threads[0].roots[0].name, "a");
        assert_eq!(p.threads[1].roots[0].name, "b");
    }

    #[test]
    fn unmatched_exit_is_kept_as_leaf_and_counted() {
        // The ring dropped the enter of `lost`.
        let events = vec![
            ev(SpanKind::Exit, "lost", 1, 10, 7),
            ev(SpanKind::Enter, "ok", 1, 20, 0),
            ev(SpanKind::Exit, "ok", 1, 30, 10),
        ];
        let p = reconstruct(&events);
        assert_eq!(p.anomalies.unmatched_exits, 1);
        assert_eq!(p.threads[0].roots.len(), 2);
        assert_eq!(p.threads[0].roots[0].name, "lost");
        assert_eq!(p.threads[0].roots[0].total_ns, 7);
    }

    #[test]
    fn buried_exit_force_closes_intervening_spans() {
        // `mid`'s exit was lost; `outer`'s exit arrives while `mid` is
        // still open.
        let events = vec![
            ev(SpanKind::Enter, "outer", 1, 0, 0),
            ev(SpanKind::Enter, "mid", 1, 10, 0),
            ev(SpanKind::Exit, "outer", 1, 50, 50),
        ];
        let p = reconstruct(&events);
        assert_eq!(p.anomalies.mismatched_nesting, 1);
        let outer = &p.threads[0].roots[0];
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].name, "mid");
        assert_eq!(outer.children[0].total_ns, 40);
    }

    #[test]
    fn unclosed_spans_are_closed_at_stream_end() {
        let events = vec![
            ev(SpanKind::Enter, "outer", 1, 0, 0),
            ev(SpanKind::Enter, "inner", 1, 10, 0),
            ev(SpanKind::Exit, "inner", 1, 40, 30),
        ];
        let p = reconstruct(&events);
        assert_eq!(p.anomalies.unclosed_spans, 1);
        let outer = &p.threads[0].roots[0];
        assert_eq!(outer.total_ns, 40, "closed at the last seen timestamp");
        assert_eq!(outer.children[0].name, "inner");
    }

    #[test]
    fn critical_path_walks_heaviest_chain() {
        let mut events = Vec::new();
        events.push(ev(SpanKind::Enter, "root", 1, 0, 0));
        events.extend(span("light", 1, 10, 30));
        events.extend(span("heavy", 1, 40, 140));
        events.push(ev(SpanKind::Exit, "root", 1, 150, 150));
        // A lighter root on another thread must not win.
        events.extend(span("other", 2, 0, 50));
        let p = reconstruct(&events);
        let names: Vec<&str> = p.critical_path.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(names, vec!["root", "heavy"]);
        assert_eq!(p.critical_path[0].depth, 0);
        assert_eq!(p.critical_path[1].depth, 1);
        assert_eq!(p.critical_path[1].total_ns, 100);
    }

    #[test]
    fn collapsed_stacks_merge_occurrences() {
        let mut events = Vec::new();
        events.push(ev(SpanKind::Enter, "root", 1, 0, 0));
        events.extend(span("leaf", 1, 10, 30));
        events.extend(span("leaf", 1, 40, 50));
        events.push(ev(SpanKind::Exit, "root", 1, 100, 100));
        let p = reconstruct(&events);
        let collapsed = collapsed_stacks(&p);
        assert_eq!(collapsed, "root 70\nroot;leaf 30\n");
    }

    #[test]
    fn hotspot_table_is_deterministic_and_ranked() {
        let mut events = Vec::new();
        events.extend(span("b.slow", 1, 0, 100));
        events.extend(span("a.fast", 1, 100, 110));
        events.extend(span("c.tie", 1, 200, 210));
        let p = reconstruct(&events);
        let table = hotspot_table(&p, 10);
        let b = table.find("b.slow").expect("b.slow");
        let a = table.find("a.fast").expect("a.fast");
        let c = table.find("c.tie").expect("c.tie");
        assert!(b < a && a < c, "rank by self desc then name asc:\n{table}");
        assert_eq!(table, hotspot_table(&reconstruct(&events), 10));
    }

    #[test]
    fn ndjson_roundtrip() {
        let live = SpanEvent {
            kind: SpanKind::Exit,
            name: "music.scan",
            parent: Some("eval.window"),
            depth: 3,
            thread: 2,
            ts_ns: 1000,
            elapsed_ns: 250,
        };
        let text = format!("{}\n{}\n", live.to_ndjson(), "not json at all");
        let (events, malformed) = parse_ndjson(&text);
        assert_eq!(malformed, 1);
        assert_eq!(events.len(), 1);
        assert_eq!(
            events[0],
            TraceEvent {
                kind: SpanKind::Exit,
                name: "music.scan".to_owned(),
                thread: 2,
                ts_ns: 1000,
                elapsed_ns: 250,
            }
        );
    }

    #[test]
    fn torn_final_line_is_counted_not_fatal() {
        let good = "{\"ev\":\"enter\",\"span\":\"x.y\",\"depth\":1,\"thread\":1,\"ts_ns\":5}";
        let torn = "{\"ev\":\"exit\",\"span\":\"x.y\",\"de";
        let (events, malformed) = parse_ndjson(&format!("{good}\n{torn}"));
        assert_eq!(events.len(), 1);
        assert_eq!(malformed, 1);
        let p = reconstruct(&events);
        assert_eq!(p.anomalies.unclosed_spans, 1);
    }

    #[test]
    fn json_export_shape() {
        let events: Vec<TraceEvent> = span("a.b", 1, 0, 10).into_iter().collect();
        let p = reconstruct_with_dropped(&events, 3);
        let json = to_json(&p, 5);
        assert!(json.contains("\"dropped_events\": 3"));
        assert!(json.contains("\"stage\": \"a.b\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn empty_stream_yields_empty_profile() {
        let p = reconstruct(&[]);
        assert!(p.threads.is_empty());
        assert!(p.stages.is_empty());
        assert!(p.critical_path.is_empty());
        assert!(!p.anomalies.any());
        assert_eq!(hotspot_table(&p, 5).lines().count(), 1);
        assert_eq!(collapsed_stacks(&p), "");
    }
}
