//! End-to-end allocation attribution through the real global allocator
//! (feature `alloc-count`): run with
//! `cargo test -p mpdf-obs --features alloc-count`.
#![cfg(feature = "alloc-count")]

use std::sync::{Mutex, MutexGuard, PoisonError};

use mpdf_obs::allocs::{self, CountingAllocator};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// The enable flag and totals are process-global; the two tests must
/// not interleave.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn stage_allocations_are_attributed_and_published() {
    let _serial = serial();
    allocs::enable();
    {
        let _stage = mpdf_obs::stage!("obs.test.alloc_e2e");
        let buf: Vec<u64> = Vec::with_capacity(1024);
        std::hint::black_box(&buf);
        {
            // Nested stages attribute to the innermost scope.
            let _inner = mpdf_obs::stage!("obs.test.alloc_e2e_inner");
            let inner_buf: Vec<u8> = Vec::with_capacity(512);
            std::hint::black_box(&inner_buf);
        }
    }
    allocs::disable();

    let totals = allocs::stage_totals();
    let get = |wanted: &str| -> (u64, u64) {
        totals
            .iter()
            .find(|(name, _, _)| *name == wanted)
            .map(|(_, a, b)| (*a, *b))
            .unwrap_or((0, 0))
    };
    let (outer_allocs, outer_bytes) = get("obs.test.alloc_e2e");
    assert!(outer_allocs >= 1, "outer stage saw no allocations");
    assert!(
        outer_bytes >= 8192,
        "outer stage bytes {outer_bytes} < 8192"
    );
    let (inner_allocs, inner_bytes) = get("obs.test.alloc_e2e_inner");
    assert!(inner_allocs >= 1, "inner stage saw no allocations");
    assert!(inner_bytes >= 512, "inner stage bytes {inner_bytes} < 512");
    let (total_allocs, total_bytes) = get("total");
    assert!(total_allocs >= outer_allocs + inner_allocs);
    assert!(total_bytes >= outer_bytes + inner_bytes);

    // Publishing lands the numbers on obs.alloc.* registry counters.
    allocs::publish();
    assert!(mpdf_obs::metrics::counter("obs.alloc.allocs_total").get() >= total_allocs);
    assert!(
        mpdf_obs::metrics::counter("obs.alloc.obs.test.alloc_e2e.bytes_total").get() >= outer_bytes
    );
}

#[test]
fn disabled_accounting_attributes_nothing_new() {
    let _serial = serial();
    allocs::disable();
    let before: u64 = allocs::stage_totals()
        .iter()
        .find(|(name, _, _)| *name == "total")
        .map(|(_, a, _)| *a)
        .unwrap_or(0);
    {
        let _stage = mpdf_obs::stage!("obs.test.alloc_disabled");
        let buf: Vec<u64> = Vec::with_capacity(256);
        std::hint::black_box(&buf);
    }
    // The stage never interned a cell while disabled.
    assert!(!allocs::stage_totals()
        .iter()
        .any(|(name, _, _)| *name == "obs.test.alloc_disabled"));
    // And the process total did not move (nothing records when off).
    let after: u64 = allocs::stage_totals()
        .iter()
        .find(|(name, _, _)| *name == "total")
        .map(|(_, a, _)| *a)
        .unwrap_or(0);
    assert_eq!(before, after);
}
