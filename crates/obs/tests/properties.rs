//! Property-based tests for histogram bucket boundaries and quantile
//! estimation in `mpdf-obs`.

use mpdf_obs::metrics::{Histogram, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Arbitrary sample streams spanning many bucket magnitudes: raw draws in
/// `[0, 2^48)` shifted down by a random number of bits so small values
/// (and zero) appear often.
fn samples_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(
        (0u64..(1 << 48), 0u32..48).prop_map(|(v, shift)| v >> shift),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_are_monotone_and_bounded(samples in samples_strategy()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let min = *samples.iter().min().expect("non-empty");
        let max = *samples.iter().max().expect("non-empty");
        let s = h.snapshot();
        prop_assert_eq!(s.count, samples.len() as u64);
        prop_assert_eq!(s.min, min);
        prop_assert_eq!(s.max, max);
        prop_assert_eq!(s.sum, samples.iter().sum::<u64>());
        // Quantiles stay within the recorded value range...
        for q in [s.p50, s.p95, s.p99] {
            prop_assert!(q >= min as f64, "quantile {} below min {}", q, min);
            prop_assert!(q <= max as f64, "quantile {} above max {}", q, max);
        }
        // ...and are monotone in the quantile argument.
        prop_assert!(s.p50 <= s.p95, "p50 {} > p95 {}", s.p50, s.p95);
        prop_assert!(s.p95 <= s.p99, "p95 {} > p99 {}", s.p95, s.p99);
        let q0 = h.quantile(0.0).expect("non-empty");
        let q1 = h.quantile(1.0).expect("non-empty");
        prop_assert!(q0 <= q1);
        prop_assert!(q1 <= max as f64);
    }

    #[test]
    fn single_value_streams_have_exact_quantiles(
        value in (0u64..(1 << 48), 0u32..48).prop_map(|(v, s)| v >> s),
        repeats in 1usize..50,
    ) {
        let h = Histogram::new();
        for _ in 0..repeats {
            h.record(value);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count, repeats as u64);
        prop_assert_eq!(s.min, value);
        prop_assert_eq!(s.max, value);
        // Exactness on single-valued streams: every quantile collapses to
        // the one recorded value, with no interpolation error.
        prop_assert_eq!(s.p50, value as f64);
        prop_assert_eq!(s.p95, value as f64);
        prop_assert_eq!(s.p99, value as f64);
        prop_assert_eq!(h.quantile(0.25).expect("non-empty"), value as f64);
    }

    #[test]
    fn bucket_boundaries_round_trip(exp in 0u32..63) {
        // 2^exp and 2^exp - 1 land in adjacent buckets: recording both
        // must preserve counts and keep quantiles within [min, max].
        let lo = (1u64 << exp) - 1;
        let hi = 1u64 << exp;
        let h = Histogram::new();
        h.record(lo);
        h.record(hi);
        let s = h.snapshot();
        prop_assert_eq!(s.count, 2);
        prop_assert_eq!(s.min, lo);
        prop_assert_eq!(s.max, hi);
        prop_assert!(s.p50 >= lo as f64 && s.p50 <= hi as f64);
        prop_assert!(s.p99 >= lo as f64 && s.p99 <= hi as f64);
    }

    #[test]
    fn quantile_argument_monotonicity_fine_grained(samples in samples_strategy()) {
        let h = Histogram::new();
        for &v in &samples {
            h.record(v);
        }
        let mut last = f64::MIN;
        for i in 0..=20 {
            let q = h.quantile(f64::from(i) / 20.0).expect("non-empty");
            prop_assert!(
                q >= last,
                "quantile({}) = {} dropped below previous {}",
                f64::from(i) / 20.0, q, last
            );
            last = q;
        }
    }
}

#[test]
fn extreme_bucket_values_are_representable() {
    let h = Histogram::new();
    h.record(0);
    h.record(u64::MAX);
    let s = h.snapshot();
    assert_eq!(s.count, 2);
    assert_eq!(s.min, 0);
    assert_eq!(s.max, u64::MAX);
    assert!(s.p50 >= 0.0 && s.p99 <= u64::MAX as f64);
    assert_eq!(s.sum, u64::MAX, "sum wraps only past u64::MAX total");
}

#[test]
fn bucket_count_matches_u64_width() {
    // 1 zero bucket + 64 power-of-two buckets cover the whole u64 range.
    assert_eq!(HISTOGRAM_BUCKETS, 65);
}
