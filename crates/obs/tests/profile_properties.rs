//! Property-based tests for `mpdf_obs::profile`: span-tree
//! reconstruction must be *total* — arbitrary malformed streams
//! (unbalanced enter/exit, interleaved threads, ring-evicted prefixes,
//! garbage NDJSON) always yield a profile — and self-time attribution
//! can never exceed the time actually spanned.

use mpdf_obs::profile::{self, SpanNode, TraceEvent};
use mpdf_obs::trace::SpanKind;
use proptest::prelude::*;

const NAMES: [&str; 4] = [
    "eval.window",
    "music.scan",
    "core.mu_k",
    "core.score.combined",
];

/// Completely unconstrained events: kinds, names, threads, timestamps
/// and durations all free — most generated streams are malformed.
fn chaotic_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec(
        (
            0u8..3,
            0usize..NAMES.len(),
            1u64..4,
            0u64..10_000,
            0u64..5_000,
        )
            .prop_map(|(kind, name, thread, ts_ns, elapsed_ns)| TraceEvent {
                kind: match kind {
                    0 => SpanKind::Enter,
                    1 => SpanKind::Exit,
                    _ => SpanKind::Instant,
                },
                name: NAMES[name].to_owned(),
                thread,
                ts_ns,
                elapsed_ns,
            }),
        0..120,
    )
}

/// Well-formed single-thread streams built with an explicit stack:
/// every exit matches the innermost enter, timestamps are monotone,
/// reported durations equal the timestamp span.
fn balanced_events() -> impl Strategy<Value = Vec<TraceEvent>> {
    proptest::collection::vec((0u8..2, 0usize..NAMES.len(), 1u64..50), 0..80).prop_map(|ops| {
        let mut events = Vec::new();
        let mut stack: Vec<(String, u64)> = Vec::new();
        let mut ts = 0u64;
        for (push, name, dt) in ops {
            ts += dt;
            if push == 1 {
                let name = NAMES[name].to_owned();
                stack.push((name.clone(), ts));
                events.push(TraceEvent {
                    kind: SpanKind::Enter,
                    name,
                    thread: 1,
                    ts_ns: ts,
                    elapsed_ns: 0,
                });
            } else if let Some((name, start)) = stack.pop() {
                events.push(TraceEvent {
                    kind: SpanKind::Exit,
                    name,
                    thread: 1,
                    ts_ns: ts,
                    elapsed_ns: ts - start,
                });
            }
        }
        while let Some((name, start)) = stack.pop() {
            ts += 1;
            events.push(TraceEvent {
                kind: SpanKind::Exit,
                name,
                thread: 1,
                ts_ns: ts,
                elapsed_ns: ts - start,
            });
        }
        events
    })
}

/// Sum of `self_ns` over a whole subtree.
fn subtree_self_sum(node: &SpanNode) -> u64 {
    node.self_ns() + node.children.iter().map(subtree_self_sum).sum::<u64>()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reconstruction_is_total_on_chaotic_streams(events in chaotic_events()) {
        let profile = profile::reconstruct(&events);
        prop_assert_eq!(profile.events, events.len() as u64);
        // Self attribution is bounded by each root's span even when the
        // stream lied about durations.
        for tree in &profile.threads {
            for root in &tree.roots {
                prop_assert!(
                    subtree_self_sum(root) <= root.total_ns,
                    "self sum {} exceeds root total {} for {}",
                    subtree_self_sum(root), root.total_ns, root.name
                );
            }
        }
        // Aggregates agree between the per-stage view and the trees.
        let stage_self: u64 = profile.stages.iter().map(|s| s.self_ns).sum();
        let tree_self: u64 = profile
            .threads
            .iter()
            .flat_map(|t| t.roots.iter().map(subtree_self_sum))
            .sum();
        prop_assert_eq!(stage_self, tree_self);
        // Renderers are total too, and deterministic.
        let table = profile::hotspot_table(&profile, 10);
        prop_assert_eq!(&table, &profile::hotspot_table(&profile::reconstruct(&events), 10));
        let _ = profile::collapsed_stacks(&profile);
        let json = profile::to_json(&profile, 10);
        prop_assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn balanced_streams_reconstruct_exactly(events in balanced_events()) {
        let profile = profile::reconstruct(&events);
        prop_assert!(!profile.anomalies.any(), "{:?}", profile.anomalies);
        // Every enter/exit pair appears exactly once in the aggregates.
        let exits = events.iter().filter(|e| e.kind == SpanKind::Exit).count() as u64;
        let occurrences: u64 = profile.stages.iter().map(|s| s.count).sum();
        prop_assert_eq!(occurrences, exits);
        // Durations were consistent with timestamps, so self sums equal
        // root totals exactly (no saturation triggered).
        for tree in &profile.threads {
            for root in &tree.roots {
                prop_assert_eq!(subtree_self_sum(root), root.total_ns);
            }
        }
    }

    #[test]
    fn truncated_streams_stay_total(events in balanced_events(), cut in 0usize..40) {
        // Simulate a bounded ring evicting the oldest `cut` events.
        let cut = cut.min(events.len());
        let truncated = &events[cut..];
        let profile = profile::reconstruct_with_dropped(truncated, cut as u64);
        prop_assert_eq!(profile.anomalies.dropped_events, cut as u64);
        prop_assert_eq!(profile.events, truncated.len() as u64);
        for tree in &profile.threads {
            for root in &tree.roots {
                prop_assert!(subtree_self_sum(root) <= root.total_ns);
            }
        }
        if cut == 0 {
            prop_assert!(!profile.anomalies.any());
        }
    }

    #[test]
    fn ndjson_parser_is_total_on_garbage(
        bytes in proptest::collection::vec(0u8..128, 0..400)
    ) {
        // Printable-ish ASCII plus newlines/quotes/braces: enough to hit
        // torn JSON, stray quotes and unbalanced braces.
        let text: String = bytes
            .iter()
            .map(|&b| if b == 0 { '\n' } else { char::from(b) })
            .collect();
        let (events, malformed) = profile::parse_ndjson(&text);
        let lines = text.lines().filter(|l| !l.trim().is_empty()).count() as u64;
        prop_assert!(events.len() as u64 + malformed <= lines);
        let _ = profile::reconstruct(&events);
    }
}
