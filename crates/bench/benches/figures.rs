//! One bench per paper exhibit: reduced-size versions of every experiment
//! runner, exercising the exact code path that regenerates each figure.
//! A regression (panic, pathological slowdown) in any figure's pipeline
//! fails here long before a full `repro all` run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mpdf_bench::small_campaign;
use mpdf_eval::experiments as exp;

fn figure_benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    let cfg = small_campaign();

    g.bench_function("fig2a_rss_change_cdf", |b| {
        b.iter(|| black_box(exp::fig2::run_fig2a(&cfg, 10)));
    });
    g.bench_function("fig2b_crossing_series", |b| {
        b.iter(|| black_box(exp::fig2::run_fig2b(&cfg, 100)));
    });
    g.bench_function("fig3_mu_fits", |b| {
        b.iter(|| black_box(exp::fig3::run(&cfg, 10)));
    });
    g.bench_function("fig4_mu_stability", |b| {
        b.iter(|| black_box(exp::fig4::run(&cfg, 200)));
    });
    g.bench_function("fig5b_pseudospectrum", |b| {
        b.iter(|| black_box(exp::fig5::run_fig5b(&cfg)));
    });
    g.bench_function("fig5c_angle_fan", |b| {
        b.iter(|| black_box(exp::fig5::run_fig5c(&cfg)));
    });
    g.bench_function("fig7_roc_campaign", |b| {
        b.iter(|| black_box(exp::fig7::run(&cfg).unwrap()));
    });
    g.bench_function("fig8_per_case", |b| {
        b.iter(|| black_box(exp::fig8::run(&cfg).unwrap()));
    });
    g.bench_function("fig9_distance", |b| {
        b.iter(|| black_box(exp::fig9::run(&cfg).unwrap()));
    });
    g.bench_function("fig10_angle_errors", |b| {
        b.iter(|| black_box(exp::fig10::run(&cfg)));
    });
    g.bench_function("fig11_angle_gain", |b| {
        b.iter(|| black_box(exp::fig11::run(&cfg).unwrap()));
    });
    // Fig. 12 sweeps window sizes internally; restrict to the small config
    // via a trimmed clone to keep the bench bounded.
    g.bench_function("fig12_packet_budget", |b| {
        let mut tiny = cfg.clone();
        tiny.negative_windows = 6;
        b.iter(|| black_box(exp::fig12::run(&tiny).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, figure_benches);
criterion_main!(benches);
