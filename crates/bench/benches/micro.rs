//! Micro-benchmarks of the pipeline's building blocks.
//!
//! The paper argues (§V-B4) that "the weighting schemes are low in
//! computation complexity [so] the dominating constraint lies in the
//! number of packets required". These benches quantify that: every
//! per-decision stage must be far below the 0.5 s packet budget.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use mpdf_bench::{bench_fixture, bench_link};

// The overhead benches only mean something when every allocation in the
// process actually routes through the counting allocator.
#[cfg(feature = "alloc-profile")]
#[global_allocator]
static COUNTING_ALLOC: mpdf_obs::allocs::CountingAllocator = mpdf_obs::allocs::CountingAllocator;
use mpdf_core::multipath_factor::multipath_factors;
use mpdf_core::scheme::{
    Baseline, DetectionScheme, SubcarrierAndPathWeighting, SubcarrierWeighting,
};
use mpdf_core::subcarrier_weight::SubcarrierWeights;
use mpdf_fleet::{Fleet, FleetPolicy, LinkWindow};
use mpdf_music::covariance::sample_covariance;
use mpdf_music::music::{pseudospectrum, AngleGrid, UlaSteering};
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::tracer::{trace, TraceConfig};
use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::dft::{dft, nudft_at_delay};
use mpdf_rfmath::eig::hermitian_eig;
use mpdf_rfmath::matrix::CMatrix;
use mpdf_session::runtime::{SessionConfig, SessionRuntime};
use mpdf_wifi::band::Band;
use mpdf_wifi::receiver::CsiReceiver;
use mpdf_wifi::sanitize::sanitize_packet;
use mpdf_wifi::wire;

fn bench_numerics(c: &mut Criterion) {
    let mut g = c.benchmark_group("numerics");
    let x: Vec<Complex64> = (0..30)
        .map(|i| Complex64::cis(i as f64 * 0.7) * (1.0 + 0.01 * i as f64))
        .collect();
    let band = Band::wifi_2_4ghz_channel11();
    let freqs = band.frequencies();
    g.bench_function("dft_30", |b| b.iter(|| black_box(dft(black_box(&x)))));
    g.bench_function("nudft_delay0_30", |b| {
        b.iter(|| black_box(nudft_at_delay(black_box(&x), black_box(&freqs), 0.0)));
    });
    let v = [
        Complex64::new(1.0, 0.5),
        Complex64::new(0.0, -1.0),
        Complex64::new(0.7, 0.2),
    ];
    let a = &CMatrix::outer(&v, &v) + &CMatrix::identity(3).scale(0.1);
    g.bench_function("hermitian_eig_3x3", |b| {
        b.iter(|| black_box(hermitian_eig(black_box(&a), 1e-12).unwrap()));
    });
    g.finish();
}

fn bench_physics(c: &mut Criterion) {
    let mut g = c.benchmark_group("physics");
    let link = bench_link();
    let env = link.environment().clone();
    let tx = link.tx();
    let rx = link.rx();
    g.bench_function("trace_order3_shell_room", |b| {
        b.iter(|| black_box(trace(&env, tx, rx, &TraceConfig::default()).unwrap()));
    });
    let body = HumanBody::new(mpdf_geom::vec2::Point::new(4.0, 3.5));
    g.bench_function("snapshot_with_human", |b| {
        b.iter(|| black_box(link.snapshot(Some(&body)).unwrap()));
    });
    let snap = link.snapshot(Some(&body)).unwrap();
    let freqs = Band::wifi_2_4ghz_channel11().frequencies();
    g.bench_function("cfr_30_subcarriers", |b| {
        b.iter(|| black_box(snap.cfr(black_box(&freqs))));
    });
    g.finish();
}

fn bench_detection(c: &mut Criterion) {
    let mut g = c.benchmark_group("detection");
    let (profile, window, config) = bench_fixture();
    let freqs = config.band.frequencies();
    let mut pkt = window[0].clone();
    g.bench_function("sanitize_packet", |b| {
        b.iter(|| {
            let mut q = pkt.clone();
            black_box(sanitize_packet(&mut q, config.band.indices()));
        });
    });
    sanitize_packet(&mut pkt, config.band.indices());
    g.bench_function("multipath_factors_packet", |b| {
        b.iter(|| black_box(multipath_factors(black_box(&pkt), &freqs)));
    });
    g.bench_function("subcarrier_weights_25pkt", |b| {
        b.iter(|| black_box(SubcarrierWeights::from_packets(black_box(&window), &freqs)));
    });
    let snaps: Vec<Vec<Complex64>> = (0..30).map(|k| pkt.subcarrier_column(k)).collect();
    let r = sample_covariance(&snaps).unwrap();
    let steering = UlaSteering::three_half_wavelength();
    let grid = AngleGrid::full_front(1.0);
    g.bench_function("music_pseudospectrum_181pt", |b| {
        b.iter(|| black_box(pseudospectrum(&r, &steering, 2, &grid).unwrap()));
    });
    // The full per-decision AoA pipeline: covariance → eig → angle scan.
    g.bench_function("music_pipeline_cov_eig_scan", |b| {
        b.iter(|| {
            let r = sample_covariance(black_box(&snaps)).unwrap();
            let fb = mpdf_music::covariance::forward_backward(&r);
            black_box(pseudospectrum(&fb, &steering, 2, &grid).unwrap())
        });
    });
    // The three per-window decisions — the §V-B4 latency story.
    g.bench_function("score_baseline_25pkt", |b| {
        b.iter(|| black_box(Baseline.score(&profile, &window, &config).unwrap()));
    });
    g.bench_function("score_subcarrier_25pkt", |b| {
        b.iter(|| {
            black_box(
                SubcarrierWeighting
                    .score(&profile, &window, &config)
                    .unwrap(),
            )
        });
    });
    g.bench_function("score_combined_25pkt", |b| {
        b.iter(|| {
            black_box(
                SubcarrierAndPathWeighting
                    .score(&profile, &window, &config)
                    .unwrap(),
            )
        });
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let (_, window, _) = bench_fixture();
    // One 3×30 frame: split + header validation + borrow, no packet
    // materialization — the zero-alloc hot path of the ingest loop.
    let mut g = c.benchmark_group("wire");
    let mut frame = Vec::new();
    // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
    wire::encode_frame(&window[0], 40, &mut frame).expect("3x30 fits the wire");
    g.bench_function("decode_frame", |b| {
        b.iter(|| {
            // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
            black_box(wire::WireRecord::parse(black_box(&frame)).expect("valid frame"))
        });
    });
    g.finish();

    // End-to-end ingest of one decision window's burst (25 packets of
    // 30 subcarriers): frame splitting plus packet materialization —
    // packets/sec/core is `window.len() / mean_ns_per_iter`.
    let mut g = c.benchmark_group("stream");
    let mut burst = Vec::new();
    for packet in &window {
        // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
        wire::encode_frame(packet, 40, &mut burst).expect("3x30 fits the wire");
    }
    g.bench_function("ingest_30sub", |b| {
        let mut out = Vec::with_capacity(window.len());
        b.iter(|| {
            out.clear();
            let stats = wire::drain_frames(black_box(&burst), &mut out);
            black_box(stats.frames)
        });
    });
    g.finish();
}

fn bench_fleet(c: &mut Criterion) {
    let mut g = c.benchmark_group("fleet");
    // One supervisor tick over a thousand calibrated links across eight
    // shards — the fleet-scale hot path (route → shed → step → fuse).
    // A single calibration is cloned per link; a one-window rollback
    // reservoir keeps the clone cost in memory, not in the timed loop.
    let mut rx = CsiReceiver::new(bench_link(), 4321).expect("receiver");
    let calibration = rx.capture_static(None, 150).expect("capture");
    let runtime = SessionRuntime::calibrate(
        &calibration,
        SubcarrierWeighting,
        mpdf_core::profile::DetectorConfig::default(),
        SessionConfig {
            reservoir_windows: 1,
            ..SessionConfig::default()
        },
    )
    .expect("calibrate");
    let mut fleet = Fleet::in_memory(8, FleetPolicy::default(), 1).expect("fleet");
    for link in 0..1000u64 {
        fleet
            .register(link, (link % 8) as u32, runtime.clone())
            .expect("register");
    }
    let window = rx.capture_static(None, 25).expect("capture");
    let windows: Vec<LinkWindow> = (0..1000u64)
        .map(|link| LinkWindow {
            link,
            packets: window.clone(),
        })
        .collect();
    g.sample_size(10);
    g.bench_function("step_1k_links", |b| {
        b.iter(|| black_box(fleet.step_tick(black_box(&windows)).expect("step")));
    });
    g.finish();
}

fn bench_obs(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs");
    // Default state — tracing and timing both off. This is the tax every
    // instrumented stage pays in production, so it must stay negligible
    // next to the per-decision budget above.
    g.bench_function("span_enter_exit_disabled", |b| {
        b.iter(|| {
            let guard = mpdf_obs::stage!("bench.span.disabled");
            black_box(&guard);
        });
    });
    // Timing on: span durations recorded into a lock-free histogram.
    mpdf_obs::metrics::enable_timing();
    g.bench_function("span_enter_exit_timed", |b| {
        b.iter(|| {
            let guard = mpdf_obs::stage!("bench.span.timed");
            black_box(&guard);
        });
    });
    mpdf_obs::metrics::disable_timing();
    // Tracing on with a bounded in-memory subscriber: full event emission.
    let ring = std::sync::Arc::new(mpdf_obs::trace::RingBuffer::new(1024));
    mpdf_obs::trace::install(ring as std::sync::Arc<dyn mpdf_obs::trace::Subscriber>);
    g.bench_function("span_enter_exit_ring", |b| {
        b.iter(|| {
            let guard = mpdf_obs::stage!("bench.span.ring");
            black_box(&guard);
        });
    });
    mpdf_obs::trace::uninstall();
    let counter = mpdf_obs::metrics::counter("bench.counter");
    g.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    let hist = mpdf_obs::metrics::histogram("bench.histogram");
    g.bench_function("histogram_record", |b| {
        b.iter(|| hist.record(black_box(1234)));
    });
    // Offline span-tree reconstruction (the `trace-report` hot path):
    // a balanced two-level stream, 256 windows of 4 nested stages.
    let mut events = Vec::new();
    let mut ts = 0u64;
    for _ in 0..256 {
        for name in ["eval.window", "music.covariance", "music.scan"] {
            events.push(mpdf_obs::profile::TraceEvent {
                kind: mpdf_obs::trace::SpanKind::Enter,
                name: name.to_owned(),
                thread: 1,
                ts_ns: ts,
                elapsed_ns: 0,
            });
            ts += 100;
        }
        for (name, elapsed) in [
            ("music.scan", 100),
            ("music.covariance", 300),
            ("eval.window", 500),
        ] {
            ts += 100;
            events.push(mpdf_obs::profile::TraceEvent {
                kind: mpdf_obs::trace::SpanKind::Exit,
                name: name.to_owned(),
                thread: 1,
                ts_ns: ts,
                elapsed_ns: elapsed,
            });
        }
    }
    g.bench_function("profile_reconstruct_256win", |b| {
        b.iter(|| black_box(mpdf_obs::profile::reconstruct(black_box(&events))));
    });
    // Allocation churn with the default system allocator: the baseline
    // the `alloc-profile` overhead bench below is compared against.
    g.bench_function("alloc_churn_baseline", |b| {
        b.iter(|| {
            let v: Vec<u64> = Vec::with_capacity(black_box(64));
            black_box(v);
        });
    });
    // Same churn through the counting allocator with stage attribution
    // on (only built with `--features alloc-profile`; the committed
    // reference keeps the entry, default runs report it as missing).
    #[cfg(feature = "alloc-profile")]
    {
        mpdf_obs::allocs::enable();
        let _scope = mpdf_obs::allocs::StageScope::enter("bench.alloc");
        g.bench_function("alloc_churn_counted", |b| {
            b.iter(|| {
                let v: Vec<u64> = Vec::with_capacity(black_box(64));
                black_box(v);
            });
        });
        mpdf_obs::allocs::disable();
    }
    g.finish();
}

fn bench_xtask(c: &mut Criterion) {
    let mut g = c.benchmark_group("xtask");
    // Full-workspace static analysis: lex every first-party file and run
    // all fifteen rules. This is the pre-commit/CI latency developers
    // actually feel, so it is pinned alongside the pipeline numbers.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    g.bench_function("lint_workspace_full", |b| {
        b.iter(|| black_box(xtask::lint::lint_workspace(black_box(root)).unwrap()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_numerics,
    bench_physics,
    bench_detection,
    bench_wire,
    bench_fleet,
    bench_obs,
    bench_xtask
);
criterion_main!(benches);
