//! # mpdf-bench — shared fixtures for the benchmark harness
//!
//! The benches live in `benches/`: `micro` times the building blocks
//! (supporting the paper's §V-B4 claim that the weighting schemes are
//! computationally negligible next to the packet budget), and `figures`
//! runs reduced-size versions of every experiment so regressions in any
//! figure's pipeline show up as timing or panics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::human::HumanBody;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::receiver::CsiReceiver;

/// The standard benchmark link: the paper's 4 m classroom link inside the
/// evaluation building shell.
pub fn bench_link() -> ChannelModel {
    let env = mpdf_eval::scenario::classroom();
    ChannelModel::new(
        env,
        mpdf_geom::vec2::Point::new(2.0, 3.0),
        mpdf_geom::vec2::Point::new(6.0, 3.0),
    )
    // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
    .expect("valid link")
}

/// A calibrated profile plus a 25-packet monitoring window with a human
/// present — the per-decision workload.
pub fn bench_fixture() -> (CalibrationProfile, Vec<CsiPacket>, DetectorConfig) {
    let config = DetectorConfig::default();
    // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
    let mut rx = CsiReceiver::new(bench_link(), 1234).expect("receiver");
    // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
    let calibration = rx.capture_static(None, 200).expect("capture");
    // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
    let profile = CalibrationProfile::build(&calibration, &config).expect("profile");
    let human = HumanBody::new(mpdf_geom::vec2::Point::new(4.0, 3.5));
    // lint: allow(no-panic) — bench fixture; aborting on a broken fixture is the desired behaviour
    let window = rx.capture_static(Some(&human), 25).expect("capture");
    (profile, window, config)
}

/// A reduced campaign configuration for the figure benches.
pub fn small_campaign() -> mpdf_eval::workload::CampaignConfig {
    mpdf_eval::workload::CampaignConfig {
        calibration_packets: 120,
        episodes_per_position: 1,
        negative_windows: 9,
        ..Default::default()
    }
}
