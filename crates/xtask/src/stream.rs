//! Small navigation helpers over the flat token stream: delimiter
//! matching, method-call shape detection, receiver resolution. Shared by
//! every rule pass so structural questions ("what is `.lock()` called
//! on?") are answered one way.

use crate::lexer::{Token, TokenKind};

/// For an opening `(`/`[`/`{` at `open`, returns the index of its
/// matching close delimiter.
#[must_use]
pub fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let (o, c) = match tokens.get(open)? {
        t if t.is_punct('(') => ('(', ')'),
        t if t.is_punct('[') => ('[', ']'),
        t if t.is_punct('{') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i64;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        if t.is_punct(o) {
            depth += 1;
        } else if t.is_punct(c) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// For a closing `)`/`]`/`}` at `close`, returns the index of its
/// matching open delimiter.
#[must_use]
pub fn matching_open(tokens: &[Token], close: usize) -> Option<usize> {
    let (o, c) = match tokens.get(close)? {
        t if t.is_punct(')') => ('(', ')'),
        t if t.is_punct(']') => ('[', ']'),
        t if t.is_punct('}') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i64;
    for j in (0..=close).rev() {
        let t = &tokens[j];
        if t.is_punct(c) {
            depth += 1;
        } else if t.is_punct(o) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// True when the ident at `i` is a method call: preceded by `.` and
/// followed by `(` (turbofish-free, which is all this codebase uses).
#[must_use]
pub fn is_method_call(tokens: &[Token], i: usize) -> bool {
    tokens[i].kind == TokenKind::Ident
        && i > 0
        && tokens[i - 1].is_punct('.')
        && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
}

/// For a method-call ident at `i`, resolves the receiver's trailing
/// identifier: `self.state.lock()` → `state`, `slots[i].lock()` →
/// `slots`, `subscriber_slot().lock()` → `subscriber_slot`. Returns the
/// token index of that identifier.
#[must_use]
pub fn receiver_of(tokens: &[Token], i: usize) -> Option<usize> {
    // i-1 is the `.`; the receiver expression ends at i-2.
    let mut j = i.checked_sub(2)?;
    // Skip one trailing call/index group: `f()` or `xs[k]`.
    if tokens[j].is_punct(')') || tokens[j].is_punct(']') {
        j = matching_open(tokens, j)?.checked_sub(1)?;
    }
    (tokens[j].kind == TokenKind::Ident).then_some(j)
}

/// Index of the next token after the call group of the method-call
/// ident at `i` (i.e. after the `)` matching its `(`).
#[must_use]
pub fn after_call(tokens: &[Token], i: usize) -> Option<usize> {
    matching_close(tokens, i + 1).map(|c| c + 1)
}

#[cfg(test)]
mod tests {
    use super::{after_call, is_method_call, receiver_of};
    use crate::lexer::SourceFile;

    fn idx_of(f: &SourceFile, name: &str) -> usize {
        f.tokens.iter().position(|t| t.is_ident(name)).unwrap()
    }

    #[test]
    fn receivers_resolve_through_calls_and_indexing() {
        for (src, want) in [
            ("self.state.lock()", "state"),
            ("slots[i].lock()", "slots"),
            ("subscriber_slot().lock()", "subscriber_slot"),
            ("LOCK.lock()", "LOCK"),
        ] {
            let f = SourceFile::lex(src);
            let i = idx_of(&f, "lock");
            assert!(is_method_call(&f.tokens, i), "{src}");
            let r = receiver_of(&f.tokens, i).unwrap();
            assert_eq!(f.tokens[r].text, want, "{src}");
        }
    }

    #[test]
    fn after_call_skips_the_argument_group() {
        let f = SourceFile::lex("x.lock(a, (b, c)).unwrap()");
        let i = idx_of(&f, "lock");
        let after = after_call(&f.tokens, i).unwrap();
        assert!(f.tokens[after].is_punct('.'));
        assert!(f.tokens[after + 1].is_ident("unwrap"));
    }

    #[test]
    fn plain_function_calls_are_not_method_calls() {
        let f = SourceFile::lex("fn push(x: T) {} lock();");
        let i = idx_of(&f, "lock");
        assert!(!is_method_call(&f.tokens, i));
    }
}
