//! Metrics/observability contract: every `counter!`/`gauge!`/`stage!`
//! invocation in the workspace must use a well-formed, registered name.
//!
//! Two policies:
//!
//! - `metric-name` — the literal name passed to a metric macro must be a
//!   snake-case dotted path: at least two `.`-separated segments, each
//!   matching `[a-z][a-z0-9_]*`. Dashboards and alert routes key on
//!   these names; a camelCase or single-segment name silently forks the
//!   namespace.
//! - `metric-registry` — the name must appear in the checked-in registry
//!   (`OBS_registry.txt`) under the same kind, the registry must not
//!   list any name twice, and every registry entry must correspond to at
//!   least one call site (no stale entries). The registry is the review
//!   surface: adding a metric means touching a file a human reads.
//!
//! Registry format: one `counter <name>`, `gauge <name>` or
//! `stage <name>` declaration per line; `#` comments and blank lines are
//! ignored. Only string-literal names are checked — a computed name
//! cannot be verified statically and is reported as a `metric-name`
//! violation so it gets rewritten or annotated.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{SourceFile, TokenKind};
use crate::report::{Rule, Violation};
use crate::rules::{emit, FileCtx};
use crate::stream::matching_close;

/// A metric macro family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MetricKind {
    /// `counter!` — monotone event counts.
    Counter,
    /// `gauge!` — point-in-time levels.
    Gauge,
    /// `stage!` — pipeline stage spans.
    Stage,
}

impl MetricKind {
    fn from_ident(name: &str) -> Option<MetricKind> {
        match name {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "stage" => Some(MetricKind::Stage),
            _ => None,
        }
    }

    /// The registry keyword / macro name for this kind.
    #[must_use]
    pub const fn keyword(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Stage => "stage",
        }
    }
}

/// One metric-macro call site with a literal name.
#[derive(Debug, Clone)]
pub struct MetricUse {
    /// Metric name with the surrounding quotes stripped.
    pub name: String,
    /// Which macro family invoked it.
    pub kind: MetricKind,
    /// File of the call site (workspace-relative).
    pub file: PathBuf,
    /// 1-based line of the call site.
    pub line: u32,
}

/// Parsed `OBS_registry.txt`: name → (kind, registry line).
#[derive(Debug, Default)]
pub struct Registry {
    entries: BTreeMap<String, (MetricKind, u32)>,
}

impl Registry {
    /// Parses registry text; malformed or duplicate lines come back as
    /// `(line, message)` errors to report against the registry file.
    #[must_use]
    pub fn parse(text: &str) -> (Registry, Vec<(u32, String)>) {
        let mut reg = Registry::default();
        let mut errors = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = (idx + 1) as u32;
            let mut parts = line.split_whitespace();
            let kind = parts.next().and_then(MetricKind::from_ident);
            match (kind, parts.next(), parts.next()) {
                (Some(kind), Some(name), None) => {
                    if reg
                        .entries
                        .insert(name.to_owned(), (kind, lineno))
                        .is_some()
                    {
                        errors.push((lineno, format!("metric `{name}` registered twice")));
                    }
                }
                _ => errors.push((
                    lineno,
                    format!(
                        "unrecognized registry line `{line}` (want `counter|gauge|stage <name>`)"
                    ),
                )),
            }
        }
        (reg, errors)
    }
}

/// True when `name` is a snake-case dotted path with ≥ 2 segments.
#[must_use]
pub fn well_formed(name: &str) -> bool {
    let segments: Vec<&str> = name.split('.').collect();
    segments.len() >= 2
        && segments.iter().all(|seg| {
            let mut chars = seg.chars();
            chars.next().is_some_and(|c| c.is_ascii_lowercase())
                && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Scans one file for metric-macro call sites. Checks name style
/// inline; well-formed literal uses are appended to `uses` for the
/// workspace-level registry pass (a style violation suppresses the
/// registry check for that site, so one bad name yields one finding).
pub fn collect(
    file: &SourceFile,
    rel: &Path,
    ctx: FileCtx<'_>,
    uses: &mut Vec<MetricUse>,
    out: &mut Vec<Violation>,
) {
    let _ = ctx;
    let toks = &file.tokens;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(t.line) {
            continue;
        }
        let Some(kind) = MetricKind::from_ident(&t.text) else {
            continue;
        };
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('!')) {
            continue;
        }
        let open = i + 2;
        if matching_close(toks, open).is_none() {
            continue;
        }
        let Some(first_arg) = toks.get(open + 1) else {
            continue;
        };
        if first_arg.kind != TokenKind::Str {
            emit(
                file,
                rel,
                t,
                Rule::MetricName,
                format!(
                    "`{}!` invoked with a non-literal name — metric names must \
                     be string literals so the registry check can see them",
                    kind.keyword()
                ),
                out,
            );
            continue;
        }
        // The lexer stores the unquoted literal body for every string
        // flavour, so the token text is the metric name itself.
        let name = first_arg.text.clone();
        if !well_formed(&name) {
            emit(
                file,
                rel,
                t,
                Rule::MetricName,
                format!(
                    "metric name `{name}` is not a snake-case dotted path — \
                     use at least two `.`-separated `[a-z][a-z0-9_]*` segments \
                     (e.g. `par.jobs_total`)"
                ),
                out,
            );
            continue;
        }
        if file.allowed(Rule::MetricRegistry.name(), t.line) {
            continue;
        }
        uses.push(MetricUse {
            name,
            kind,
            file: rel.to_path_buf(),
            line: t.line,
        });
    }
}

/// Workspace-level registry reconciliation: every collected use must be
/// registered with the right kind, and every registry entry must have a
/// call site. `registry` is `None` when the registry file is missing.
pub fn check_registry(
    uses: &[MetricUse],
    registry: Option<&Registry>,
    registry_path: &Path,
    out: &mut Vec<Violation>,
) {
    let Some(registry) = registry else {
        if let Some(u) = uses.first() {
            out.push(Violation {
                file: u.file.clone(),
                line: u.line,
                col: 0,
                rule: Rule::MetricRegistry,
                message: format!(
                    "metric `{}` used but the workspace has no {} registry — \
                     create it and declare every metric",
                    u.name,
                    registry_path.display()
                ),
            });
        }
        return;
    };
    for u in uses {
        match registry.entries.get(&u.name) {
            None => out.push(Violation {
                file: u.file.clone(),
                line: u.line,
                col: 0,
                rule: Rule::MetricRegistry,
                message: format!(
                    "metric `{}` ({}) is not declared in {} — register it so \
                     dashboards and reviewers see the full namespace",
                    u.name,
                    u.kind.keyword(),
                    registry_path.display()
                ),
            }),
            Some((kind, reg_line)) if *kind != u.kind => out.push(Violation {
                file: u.file.clone(),
                line: u.line,
                col: 0,
                rule: Rule::MetricRegistry,
                message: format!(
                    "metric `{}` used as {} but registered as {} ({}:{})",
                    u.name,
                    u.kind.keyword(),
                    kind.keyword(),
                    registry_path.display(),
                    reg_line
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, (kind, reg_line)) in &registry.entries {
        if !uses.iter().any(|u| &u.name == name) {
            out.push(Violation {
                file: registry_path.to_path_buf(),
                line: *reg_line,
                col: 0,
                rule: Rule::MetricRegistry,
                message: format!(
                    "registry entry `{name}` ({}) has no call site — remove \
                     the stale entry or restore the metric",
                    kind.keyword()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{check_registry, collect, well_formed, MetricKind, Registry};
    use crate::lexer::SourceFile;
    use crate::report::{Rule, Violation};
    use crate::rules::FileCtx;
    use std::path::Path;

    fn run(source: &str, registry: Option<&str>) -> Vec<(Rule, String)> {
        let file = SourceFile::lex(source);
        let ctx = FileCtx {
            crate_name: "core",
            is_library: true,
            is_crate_root: false,
        };
        let mut uses = Vec::new();
        let mut out: Vec<Violation> = Vec::new();
        collect(&file, Path::new("x.rs"), ctx, &mut uses, &mut out);
        let parsed = registry.map(|text| {
            let (reg, errs) = Registry::parse(text);
            assert!(errs.is_empty(), "{errs:?}");
            reg
        });
        check_registry(
            &uses,
            parsed.as_ref(),
            Path::new("OBS_registry.txt"),
            &mut out,
        );
        out.into_iter().map(|v| (v.rule, v.message)).collect()
    }

    #[test]
    fn name_style_is_enforced() {
        assert!(well_formed("core.decisions_total"));
        assert!(well_formed("core.score.baseline"));
        assert!(!well_formed("decisions"));
        assert!(!well_formed("core.Decisions"));
        assert!(!well_formed("core.9lives"));
        assert!(!well_formed("core..x"));
        // A style failure suppresses the registry pass for that site,
        // so one bad name yields exactly one finding.
        let bad = "fn f() { counter!(\"justOneWord\"); }\n";
        let out = run(bad, Some(""));
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].0, Rule::MetricName);
    }

    #[test]
    fn registry_reconciliation() {
        let src = "fn f() { counter!(\"par.jobs_total\"); gauge!(\"par.queue_depth\", 3); }\n";
        // All registered: clean.
        assert!(run(src, Some("counter par.jobs_total\ngauge par.queue_depth\n")).is_empty());
        // Unregistered use.
        let out = run(src, Some("counter par.jobs_total\n"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, Rule::MetricRegistry);
        assert!(out[0].1.contains("par.queue_depth"));
        // Kind mismatch.
        let out = run(
            src,
            Some("counter par.jobs_total\ncounter par.queue_depth\n"),
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].1.contains("registered as counter"), "{out:?}");
        // Stale entry.
        let out = run(
            src,
            Some("counter par.jobs_total\ngauge par.queue_depth\nstage ghost.stage\n"),
        );
        assert_eq!(out.len(), 1);
        assert!(out[0].1.contains("no call site"), "{out:?}");
        // Missing registry entirely.
        let out = run(src, None);
        assert_eq!(out.len(), 1);
        assert!(out[0].1.contains("no OBS_registry.txt registry"), "{out:?}");
    }

    #[test]
    fn non_literal_names_and_raw_strings() {
        let computed = "fn f(name: &str) { counter!(name); }\n";
        let out = run(computed, Some(""));
        assert_eq!(out.len(), 1);
        assert!(out[0].1.contains("non-literal"), "{out:?}");
        let raw = "fn f() { stage!(r\"music.scan\"); }\n";
        assert!(run(raw, Some("stage music.scan\n")).is_empty());
    }

    #[test]
    fn tests_comments_and_unrelated_idents_are_exempt() {
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { counter!(\"x.y\"); }\n}\n";
        assert!(run(test_mod, Some("")).is_empty());
        // `counter` as a variable, no `!`: not a metric call.
        assert!(run("fn f() { let counter = 3; drop(counter); }\n", Some("")).is_empty());
        // macro_rules! definition site: `counter` followed by `{`.
        assert!(run("macro_rules! counter { ($n:expr) => {} }\n", Some("")).is_empty());
        // Doc/comment mentions never fire.
        assert!(run("// counter!(\"a.b\") increments a.b\n", Some("")).is_empty());
    }

    #[test]
    fn allow_hatch_suppresses_registry_not_style() {
        let src = "fn f() {\n    // lint: allow(metric-registry) — experimental, not yet on dashboards\n    counter!(\"lab.experimental_total\");\n}\n";
        assert!(run(src, Some("")).is_empty());
    }

    #[test]
    fn registry_rejects_duplicates_and_garbage() {
        let (reg, errs) = Registry::parse("counter a.b\ncounter a.b\nnonsense\n");
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(reg.entries.contains_key("a.b"));
        assert_eq!(reg.entries["a.b"].0, MetricKind::Counter);
    }
}
