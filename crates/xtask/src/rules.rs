//! The six original lint rules, ported from the line-oriented regex
//! scanner onto the token stream. The port closes the scanner's two
//! structural blind spots: patterns inside string literals can no longer
//! fire (strings are single opaque tokens), and multi-line constructs
//! can no longer escape (a `partial_cmp` whose `.unwrap()` sits any
//! number of rustfmt-wrapped lines later is one chain walk away).

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{SourceFile, Token, TokenKind};
use crate::report::{Rule, Violation};
use crate::stream::{after_call, is_method_call, matching_close};

/// Crates whose `as` casts are held to the `lossy-cast` rule: the
/// numeric kernels, plus `session` — its checkpoint codec packs
/// collection lengths into fixed-width fields, where a silent `as`
/// truncation writes a decodable-but-wrong file.
pub const KERNEL_CRATES: &[&str] = &["rfmath", "music", "propagation", "session"];

/// How a file is classified before rules run.
#[derive(Debug, Clone, Copy)]
pub struct FileCtx<'a> {
    /// Crate directory name (`rfmath`, `core`, …) or `"workspace"` for
    /// the umbrella crate.
    pub crate_name: &'a str,
    /// Library code (rules like `no-panic` apply) vs binary entry point.
    pub is_library: bool,
    /// Whether this file is a crate root (`lib.rs` / `main.rs`).
    pub is_crate_root: bool,
}

/// Pushes a violation at a token, honouring the allow escape hatch.
pub fn emit(
    file: &SourceFile,
    rel: &Path,
    tok: &Token,
    rule: Rule,
    message: String,
    out: &mut Vec<Violation>,
) {
    if !file.allowed(rule.name(), tok.line) {
        out.push(Violation {
            file: rel.to_path_buf(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
        });
    }
}

/// Runs the legacy rule set. `claimed` holds token indices already
/// reported by a more specific rule (`nan-ordering`'s trailing unwrap,
/// `lock-unwrap`'s unwrap/expect) that `no-panic` must not re-report.
pub fn check(
    file: &SourceFile,
    rel: &Path,
    ctx: FileCtx<'_>,
    claimed: &mut BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if ctx.is_crate_root {
        check_crate_root_attrs(file, rel, out);
    }
    check_nan_ordering(file, rel, claimed, out);
    let kernel = KERNEL_CRATES.contains(&ctx.crate_name);
    for (i, tok) in file.tokens.iter().enumerate() {
        if file.in_test(tok.line) {
            continue;
        }
        if ctx.is_library {
            check_no_panic(file, rel, i, claimed, out);
            check_no_raw_stderr(file, rel, i, out);
        }
        if kernel {
            check_lossy_cast(file, rel, i, out);
        }
        check_db_linear(file, rel, i, out);
    }
}

fn check_crate_root_attrs(file: &SourceFile, rel: &Path, out: &mut Vec<Violation>) {
    if file.allowed_in_header(Rule::CrateRootAttrs.name(), 20) {
        return;
    }
    // Look for `#![forbid(unsafe_code)]` / `#![warn(missing_docs)]` as
    // inner-attribute token sequences anywhere in the file.
    let mut have_forbid = false;
    let mut have_warn = false;
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))) {
            continue;
        }
        let Some(open) = toks.get(i + 2).filter(|t| t.is_punct('[')).map(|_| i + 2) else {
            continue;
        };
        let Some(close) = matching_close(toks, open) else {
            continue;
        };
        let names: Vec<&str> = toks[open..close]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        if names.contains(&"forbid") && names.contains(&"unsafe_code") {
            have_forbid = true;
        }
        if names.contains(&"warn") && names.contains(&"missing_docs") {
            have_warn = true;
        }
    }
    for (have, attr) in [
        (have_forbid, "#![forbid(unsafe_code)]"),
        (have_warn, "#![warn(missing_docs)]"),
    ] {
        if !have {
            out.push(Violation {
                file: rel.to_path_buf(),
                line: 1,
                col: 0,
                rule: Rule::CrateRootAttrs,
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }
}

fn check_no_panic(
    file: &SourceFile,
    rel: &Path,
    i: usize,
    claimed: &BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if claimed.contains(&i) {
        return;
    }
    let toks = &file.tokens;
    let t = &toks[i];
    if t.kind != TokenKind::Ident {
        return;
    }
    let (pat, fix) = match t.text.as_str() {
        "unwrap" if is_method_call(toks, i) => {
            ("unwrap()", "use `?`, a `Result` return, or a total method")
        }
        "expect" if is_method_call(toks, i) => {
            ("expect(", "propagate a typed error instead of panicking")
        }
        "panic" if next_is_bang(toks, i) => {
            ("panic!", "return an error variant instead of panicking")
        }
        "todo" if next_is_bang(toks, i) => ("todo!", "library code must not ship unfinished paths"),
        "unimplemented" if next_is_bang(toks, i) => (
            "unimplemented!",
            "library code must not ship unfinished paths",
        ),
        _ => return,
    };
    emit(
        file,
        rel,
        t,
        Rule::NoPanic,
        format!("`{pat}` in library code — {fix}"),
        out,
    );
}

fn next_is_bang(toks: &[Token], i: usize) -> bool {
    toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
}

/// Print macros banned from library code.
const PRINT_MACROS: &[&str] = &["print", "println", "eprint", "eprintln"];

fn check_no_raw_stderr(file: &SourceFile, rel: &Path, i: usize, out: &mut Vec<Violation>) {
    let t = &file.tokens[i];
    if t.kind == TokenKind::Ident
        && PRINT_MACROS.contains(&t.text.as_str())
        && next_is_bang(&file.tokens, i)
    {
        emit(
            file,
            rel,
            t,
            Rule::NoRawStderr,
            format!(
                "`{}!` in library code — binaries own the process streams; \
                 emit an `mpdf-obs` trace event/metric or return the text to \
                 the caller",
                t.text
            ),
            out,
        );
    }
}

/// Walks `.partial_cmp(..)` result chains for a NaN-unsafe terminal:
/// `.unwrap()` or `.unwrap_or(…Ordering::Equal)`, any number of
/// intermediate combinators and lines away. Claims the terminal token so
/// `no-panic` does not double-report the same defect.
fn check_nan_ordering(
    file: &SourceFile,
    rel: &Path,
    claimed: &mut BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    let toks = &file.tokens;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("partial_cmp") && is_method_call(toks, i)) {
            continue;
        }
        if file.in_test(toks[i].line) {
            continue;
        }
        // Walk the method chain hanging off the partial_cmp call.
        let mut cur = after_call(toks, i);
        while let Some(j) = cur {
            if !toks.get(j).is_some_and(|t| t.is_punct('.')) {
                break;
            }
            let m = j + 1;
            if !toks.get(m).is_some_and(|t| t.kind == TokenKind::Ident)
                || !toks.get(m + 1).is_some_and(|t| t.is_punct('('))
            {
                break;
            }
            let name = toks[m].text.as_str();
            let unsafe_terminal = match name {
                "unwrap" => true,
                "unwrap_or" => {
                    let close = matching_close(toks, m + 1).unwrap_or(m + 1);
                    toks[m + 1..close].iter().any(|t| t.is_ident("Equal"))
                }
                _ => false,
            };
            if unsafe_terminal {
                claimed.insert(m);
                emit(
                    file,
                    rel,
                    &toks[i],
                    Rule::NanOrdering,
                    "NaN-unsafe float ordering — use `f64::total_cmp` \
                     (a NaN here silently reorders or panics the sort)"
                        .to_owned(),
                    out,
                );
                break;
            }
            cur = after_call(toks, m);
        }
    }
}

/// Integer cast targets that always narrow from the `f64`-dominated
/// kernel arithmetic.
const NARROWING_TARGETS: &[&str] = &["f32", "i8", "i16", "i32", "u8", "u16", "u32"];
/// Wide integer targets: lossy only when the source is a float
/// expression, detected via a rounding-method call directly before the
/// cast.
const WIDE_INT_TARGETS: &[&str] = &["i64", "u64", "i128", "u128", "isize", "usize"];
const FLOAT_MARKERS: &[&str] = &["floor", "ceil", "round", "trunc"];

fn check_lossy_cast(file: &SourceFile, rel: &Path, i: usize, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    if !toks[i].is_ident("as") {
        return;
    }
    let Some(target) = toks.get(i + 1).filter(|t| t.kind == TokenKind::Ident) else {
        return;
    };
    let narrowing = NARROWING_TARGETS.contains(&target.text.as_str());
    let float_to_int = WIDE_INT_TARGETS.contains(&target.text.as_str())
        && i >= 3
        && toks[i - 1].is_punct(')')
        && toks[i - 2].is_punct('(')
        && FLOAT_MARKERS.contains(&toks[i - 3].text.as_str());
    if narrowing || float_to_int {
        emit(
            file,
            rel,
            &toks[i],
            Rule::LossyCast,
            format!(
                "lossy `as {}` cast in a numeric kernel — use a total \
                 conversion (`from`/`try_from`) or annotate why truncation is safe",
                target.text
            ),
            out,
        );
    }
}

/// Identifier suffixes treated as logarithmic quantities.
const DB_SUFFIXES: &[&str] = &["_db", "_dbm"];
/// Identifier suffixes treated as linear power/amplitude quantities.
const LINEAR_SUFFIXES: &[&str] = &[
    "_mw",
    "_watts",
    "_lin",
    "_linear",
    "_power",
    "_pow",
    "_amp",
    "_amplitude",
    "_mag",
    "_magnitude",
];

fn has_suffix(ident: &str, suffixes: &[&str]) -> bool {
    let lower = ident.to_ascii_lowercase();
    suffixes.iter().any(|s| lower.ends_with(s))
}

fn check_db_linear(file: &SourceFile, rel: &Path, i: usize, out: &mut Vec<Violation>) {
    let toks = &file.tokens;
    let t = &toks[i];
    if !(t.is_punct('*') || t.is_punct('/')) {
        return;
    }
    let Some(lhs) = i.checked_sub(1).map(|p| &toks[p]) else {
        return;
    };
    let Some(rhs) = toks.get(i + 1) else {
        return;
    };
    if lhs.kind != TokenKind::Ident || rhs.kind != TokenKind::Ident {
        return;
    }
    let mixes = (has_suffix(&lhs.text, DB_SUFFIXES) && has_suffix(&rhs.text, LINEAR_SUFFIXES))
        || (has_suffix(&lhs.text, LINEAR_SUFFIXES) && has_suffix(&rhs.text, DB_SUFFIXES));
    if mixes {
        emit(
            file,
            rel,
            t,
            Rule::DbLinear,
            format!(
                "`{} {} {}` multiplies/divides a dB quantity with a linear \
                 one — convert with `db_to_linear`/`linear_to_db` first",
                lhs.text, t.text, rhs.text
            ),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::{check, FileCtx};
    use crate::lexer::SourceFile;
    use crate::report::Rule;
    use std::collections::BTreeSet;
    use std::path::Path;

    fn lib_ctx() -> FileCtx<'static> {
        FileCtx {
            crate_name: "core",
            is_library: true,
            is_crate_root: false,
        }
    }

    fn kernel_ctx() -> FileCtx<'static> {
        FileCtx {
            crate_name: "rfmath",
            is_library: true,
            is_crate_root: false,
        }
    }

    pub(crate) fn rules_of(source: &str, ctx: FileCtx<'_>) -> Vec<Rule> {
        let file = SourceFile::lex(source);
        let mut out = Vec::new();
        let mut claimed = BTreeSet::new();
        check(&file, Path::new("x.rs"), ctx, &mut claimed, &mut out);
        out.into_iter().map(|v| v.rule).collect()
    }

    // ---- no-panic ----

    #[test]
    fn no_panic_flags_unwrap_expect_panic_todo() {
        for src in [
            "fn f() { x.unwrap(); }\n",
            "fn f() { x.expect(\"boom\"); }\n",
            "fn f() { panic!(\"boom\"); }\n",
            "fn f() { todo!(); }\n",
            "fn f() { unimplemented!(); }\n",
        ] {
            assert_eq!(rules_of(src, lib_ctx()), vec![Rule::NoPanic], "{src}");
        }
    }

    #[test]
    fn no_panic_ignores_unwrap_or_family_strings_and_paths() {
        for src in [
            "fn f() { x.unwrap_or(0); }\n",
            "fn f() { x.unwrap_or_else(|| 0); }\n",
            "fn f() { x.unwrap_or_default(); }\n",
            "fn f() { let s = \".unwrap()\"; drop(s); }\n",
            "// a comment about .unwrap()\nfn f() {}\n",
            "fn f() { let s = r#\"panic!(\"x\")\"#; drop(s); }\n",
            "use std::panic::catch_unwind;\n",
        ] {
            assert!(rules_of(src, lib_ctx()).is_empty(), "{src}");
        }
    }

    #[test]
    fn no_panic_catches_multiline_chains_the_old_scanner_saw_linewise() {
        let src = "fn f() {\n    let v = some\n        .thing()\n        .unwrap();\n}\n";
        assert_eq!(rules_of(src, lib_ctx()), vec![Rule::NoPanic]);
    }

    #[test]
    fn no_panic_exempts_cfg_test_and_non_library() {
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(rules_of(test_mod, lib_ctx()).is_empty());
        let binary = FileCtx {
            is_library: false,
            ..lib_ctx()
        };
        assert!(rules_of("fn main() { x.unwrap(); }\n", binary).is_empty());
    }

    #[test]
    fn no_panic_escape_hatch_requires_reason() {
        let with_reason =
            "fn f() { x.unwrap(); // lint: allow(no-panic) — checked two lines up\n}\n";
        assert!(rules_of(with_reason, lib_ctx()).is_empty());
        let above = "// lint: allow(no-panic) — invariant: non-empty\nfn f() { x.unwrap(); }\n";
        assert!(rules_of(above, lib_ctx()).is_empty());
        let bare = "fn f() { x.unwrap(); // lint: allow(no-panic)\n}\n";
        assert_eq!(rules_of(bare, lib_ctx()), vec![Rule::NoPanic]);
        let wrong_rule = "fn f() { x.unwrap(); // lint: allow(lossy-cast) — nope\n}\n";
        assert_eq!(rules_of(wrong_rule, lib_ctx()), vec![Rule::NoPanic]);
    }

    // ---- nan-ordering ----

    #[test]
    fn nan_ordering_flags_partial_cmp_unwrap_and_equal_fallback() {
        let unwrap = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(rules_of(unwrap, lib_ctx()), vec![Rule::NanOrdering]);
        let fallback =
            "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); }\n";
        assert_eq!(rules_of(fallback, lib_ctx()), vec![Rule::NanOrdering]);
        let qualified =
            "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }\n";
        assert_eq!(rules_of(qualified, lib_ctx()), vec![Rule::NanOrdering]);
    }

    #[test]
    fn nan_ordering_catches_distant_multiline_unwrap() {
        // Four wrapped lines between partial_cmp and unwrap: outside the
        // old scanner's 3-line window, trivial for the chain walk.
        let src = "fn f() {\n    v.sort_by(|a, b| {\n        a.score\n            .partial_cmp(&b.score)\n            .map(core::convert::identity)\n            .map(core::convert::identity)\n            .map(core::convert::identity)\n            .unwrap()\n    });\n}\n";
        assert_eq!(rules_of(src, lib_ctx()), vec![Rule::NanOrdering]);
    }

    #[test]
    fn nan_ordering_accepts_total_cmp_and_handled_partial_cmp() {
        let total = "fn f() { v.sort_by(f64::total_cmp); }\n";
        assert!(rules_of(total, lib_ctx()).is_empty());
        let handled = "fn f() -> Option<Ordering> { a.partial_cmp(&b) }\n";
        assert!(rules_of(handled, lib_ctx()).is_empty());
        let less = "fn f() { let o = a.partial_cmp(&b).unwrap_or(Ordering::Less); drop(o); }\n";
        assert!(rules_of(less, lib_ctx()).is_empty());
    }

    // ---- lossy-cast ----

    #[test]
    fn lossy_cast_flags_narrowing_in_kernels() {
        for src in [
            "fn f(x: f64) -> f32 { x as f32 }\n",
            "fn f(x: usize) -> u32 { x as u32 }\n",
            "fn f(x: f64) -> usize { x.floor() as usize }\n",
            "fn f(x: f64) -> u64 { x.round() as u64 }\n",
        ] {
            assert_eq!(rules_of(src, kernel_ctx()), vec![Rule::LossyCast], "{src}");
        }
    }

    #[test]
    fn lossy_cast_accepts_widening_annotated_and_non_kernel() {
        for src in [
            "fn f(i: usize) -> f64 { i as f64 }\n",
            "fn f(i: u32) -> u64 { u64::from(i) }\n",
            "fn f(x: f64) -> usize { x.floor() as usize } // lint: allow(lossy-cast) — bounded by grid len\n",
        ] {
            assert!(rules_of(src, kernel_ctx()).is_empty(), "{src}");
        }
        let non_kernel = "fn f(x: f64) -> f32 { x as f32 }\n";
        assert!(rules_of(non_kernel, lib_ctx()).is_empty());
    }

    // ---- crate-root-attrs ----

    #[test]
    fn crate_root_attrs_requires_both_attributes() {
        let root_ctx = FileCtx {
            crate_name: "core",
            is_library: true,
            is_crate_root: true,
        };
        let bare = "//! docs\npub fn f() {}\n";
        let rules = rules_of(bare, root_ctx);
        assert_eq!(rules, vec![Rule::CrateRootAttrs, Rule::CrateRootAttrs]);
        let good = "//! docs\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(rules_of(good, root_ctx).is_empty());
        let non_root = "pub fn f() {}\n";
        assert!(rules_of(non_root, lib_ctx()).is_empty());
        // Mentioning the attributes in a string no longer satisfies the
        // rule (the old scanner's `source.contains` did).
        let faked =
            "//! docs\nconst S: &str = \"#![forbid(unsafe_code)] #![warn(missing_docs)]\";\n";
        assert_eq!(
            rules_of(faked, root_ctx),
            vec![Rule::CrateRootAttrs, Rule::CrateRootAttrs]
        );
    }

    // ---- no-raw-stderr ----

    #[test]
    fn no_raw_stderr_flags_print_macros_in_library_code() {
        for src in [
            "fn f() { eprintln!(\"status\"); }\n",
            "fn f() { eprint!(\"status\"); }\n",
            "fn f() { println!(\"{x}\"); }\n",
            "fn f() { print!(\"{x}\"); }\n",
        ] {
            assert_eq!(rules_of(src, lib_ctx()), vec![Rule::NoRawStderr], "{src}");
        }
    }

    #[test]
    fn no_raw_stderr_exempts_bins_tests_strings_and_lookalikes() {
        let binary = FileCtx {
            is_library: false,
            ..lib_ctx()
        };
        assert!(rules_of("fn main() { println!(\"ok\"); }\n", binary).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { eprintln!(\"dbg\"); }\n}\n";
        assert!(rules_of(test_mod, lib_ctx()).is_empty());
        for src in [
            "fn f() { let s = \"println!\"; drop(s); }\n",
            "// println! is banned here\nfn f() {}\n",
            "fn f(w: &mut W) { writeln!(w, \"x\").ok(); }\n",
            "my_println!(\"macro with a suffix match\");\n",
        ] {
            assert!(rules_of(src, lib_ctx()).is_empty(), "{src}");
        }
    }

    // ---- db-linear ----

    #[test]
    fn db_linear_flags_mixed_arithmetic() {
        for src in [
            "fn f() { let x = gain_db * noise_power; }\n",
            "fn f() { let x = signal_mw / loss_db; }\n",
            "fn f() { let x = rssi_dbm * amplitude_mag; }\n",
        ] {
            assert_eq!(rules_of(src, lib_ctx()), vec![Rule::DbLinear], "{src}");
        }
    }

    #[test]
    fn db_linear_accepts_scalars_and_same_unit_math() {
        for src in [
            "fn f() { let x = gain_db * 0.5; }\n",
            "fn f() { let x = gain_db - other_db; }\n",
            "fn f() { let x = signal_mw * path_gain_lin; }\n",
            "fn f() { let x = gain_db / 10.0; }\n",
        ] {
            assert!(rules_of(src, lib_ctx()).is_empty(), "{src}");
        }
    }
}
