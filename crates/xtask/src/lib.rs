//! Workspace automation library behind the `cargo xtask` binary.
//!
//! The core is a std-only static-analysis suite for the repo's
//! first-party Rust source: a string/comment-aware lexer
//! ([`lexer`]), token-stream navigation helpers ([`stream`]), and four
//! rule families — the original safety/unit policies ([`rules`]),
//! determinism taint ([`determinism`]), the concurrency audit
//! ([`concurrency`]) and the metrics/obs contract ([`metrics`]) — all
//! orchestrated by [`lint`] and reported through [`report`] (human
//! lines or the `--json` machine report).
//!
//! Next to the lint gate live the report tools: [`benchdiff`] (wall-time
//! regression gate over `BENCH_*.json`), [`obsdiff`] (SLO gate over
//! `OBS_metrics.json` snapshots against the `OBS_budgets.txt` manifest)
//! and [`tracereport`] (span-tree profiling of `repro --trace`
//! captures, built on `mpdf_obs::profile`), sharing the std-only
//! [`json`] reader.
//!
//! It is a library (not just a binary) so `crates/bench` can measure
//! full-workspace lint wall time, and so fixture tests can drive the
//! engine in-process.
//!
//! Everything is std-only: the xtask gate must build and run in the
//! fully offline build container with no crate registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchdiff;
pub mod concurrency;
pub mod determinism;
pub mod json;
pub mod lexer;
pub mod lint;
pub mod metrics;
pub mod obsdiff;
pub mod report;
pub mod rules;
pub mod stream;
pub mod tracereport;
