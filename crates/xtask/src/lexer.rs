//! The shared scanning entry point for the lint engine: a std-only Rust
//! lexer producing a flat token stream with line/column spans.
//!
//! Every rule pass consumes [`SourceFile`], never raw text, so string
//! literals, char literals, raw strings and comments can never produce
//! false positives, and multi-line constructs (a `partial_cmp` whose
//! `.unwrap()` lands four rustfmt-wrapped lines later) can never produce
//! false negatives. The lexer also derives two side tables the rules
//! need: per-line comment text (for `lint: allow(...)` escape hatches)
//! and the line ranges covered by `#[cfg(test)]` items.
//!
//! The grammar subset is deliberately small — identifiers, lifetimes,
//! string/raw-string/byte-string/char/numeric literals, single-character
//! punctuation, line and (nested) block comments. Multi-character
//! operators arrive as adjacent punct tokens (`::` is `:` `:`), which is
//! sufficient for every rule and keeps the lexer total: any input lexes.

use std::collections::BTreeMap;

/// Token classification. The lint rules only branch on this plus the
/// token text, so the set is intentionally coarse.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`fn`, `HashMap`, `r#raw_ident` minus `r#`).
    Ident,
    /// Lifetime (`'a`), text excludes the quote.
    Lifetime,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`); text is
    /// the literal contents without quotes/hashes/prefix, escapes kept
    /// verbatim.
    Str,
    /// Char or byte literal; contents are not preserved.
    Char,
    /// Numeric literal (integers, floats; exponent signs lex separately).
    Num,
    /// A single punctuation character.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Coarse classification.
    pub kind: TokenKind,
    /// Token text (see [`TokenKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based character column of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when the token is the given single punctuation character.
    #[must_use]
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }

    /// True when the token is an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }
}

/// A lexed source file: the token stream plus the two per-line side
/// tables every rule pass shares.
#[derive(Debug)]
pub struct SourceFile {
    /// All tokens in source order. Comments are not tokens; they live in
    /// the comment table.
    pub tokens: Vec<Token>,
    /// Concatenated comment text per 1-based line (line + block + doc).
    comments: BTreeMap<u32, String>,
    /// Inclusive line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `source`. Total: malformed input degrades to punct tokens,
    /// it never fails.
    #[must_use]
    pub fn lex(source: &str) -> SourceFile {
        let mut lx = Lexer::new(source);
        lx.run();
        let test_ranges = cfg_test_ranges(&lx.tokens);
        SourceFile {
            tokens: lx.tokens,
            comments: lx.comments,
            test_ranges,
        }
    }

    /// Comment text recorded on `line` (1-based), if any.
    #[must_use]
    pub fn comment(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }

    /// Whether `line` falls inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// Whether `rule` is suppressed at `line` by a `lint: allow(<rule>)
    /// — <reason>` annotation on the same line or the line above.
    #[must_use]
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        [Some(line), line.checked_sub(1)]
            .into_iter()
            .flatten()
            .filter_map(|l| self.comment(l))
            .any(|c| allow_matches(c, rule))
    }

    /// Whether any comment in the first `n` lines suppresses `rule`
    /// (used for file-granularity rules like `crate-root-attrs`).
    #[must_use]
    pub fn allowed_in_header(&self, rule: &str, n: u32) -> bool {
        self.comments
            .range(..=n)
            .any(|(_, c)| allow_matches(c, rule))
    }
}

/// Parses one `lint: allow(a, b) — reason` annotation out of comment
/// text. The reason is mandatory: a bare allow is not a justification.
#[must_use]
pub fn allow_matches(comment: &str, rule: &str) -> bool {
    let Some(pos) = comment.find("lint: allow(") else {
        return false;
    };
    let rest = &comment[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    let names = &rest[..close];
    let reason = rest[close + 1..]
        .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '-' | '–' | ':' | ','));
    names.split(',').any(|n| n.trim() == rule) && !reason.is_empty()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
    comments: BTreeMap<u32, String>,
}

impl Lexer {
    fn new(source: &str) -> Lexer {
        Lexer {
            chars: source.chars().collect(),
            i: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
            comments: BTreeMap::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes one char, maintaining the line/col cursor.
    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokenKind, text: String, line: u32, col: u32) {
        self.tokens.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn comment_push(&mut self, line: u32, c: char) {
        self.comments.entry(line).or_default().push(c);
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(line, col),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                '\'' => self.char_or_lifetime(line, col),
                c if c.is_alphabetic() || c == '_' => self.ident(line, col),
                c if c.is_ascii_digit() => self.number(line, col),
                c => {
                    self.bump();
                    self.push(TokenKind::Punct, c.to_string(), line, col);
                }
            }
        }
    }

    fn line_comment(&mut self) {
        let line = self.line;
        self.bump();
        self.bump();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
            self.comment_push(line, c);
        }
    }

    fn block_comment(&mut self) {
        self.bump();
        self.bump();
        let mut depth = 1u32;
        while depth > 0 {
            let line = self.line;
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(c), _) => {
                    self.bump();
                    if c != '\n' {
                        self.comment_push(line, c);
                    }
                }
                (None, _) => break,
            }
        }
    }

    /// Cooked string literal: `"…"` with backslash escapes, may span
    /// lines. The opening quote is already at the cursor.
    fn string(&mut self, line: u32, col: u32) {
        self.bump();
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\\' {
                text.push(c);
                self.bump();
                if let Some(esc) = self.bump() {
                    text.push(esc);
                }
            } else if c == '"' {
                self.bump();
                break;
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokenKind::Str, text, line, col);
    }

    /// Handles the `r`/`b` prefixed literal family (`r"…"`, `r#"…"#`,
    /// `b"…"`, `br#"…"#`, `b'…'`, `r#ident`). Returns true when it
    /// consumed something; false means the caller should lex a plain
    /// identifier starting at the cursor.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let (line, col) = (self.line, self.col);
        let first = self.peek(0);
        let mut j = 1usize;
        if first == Some('b') && self.peek(1) == Some('r') {
            j = 2;
        }
        // Count hashes after the prefix.
        let mut hashes = 0usize;
        while self.peek(j + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(j + hashes) {
            Some('"') if first == Some('r') || j == 2 || hashes == 0 => {
                // Raw/byte string. (`b"…"` has j=1, hashes=0.)
                for _ in 0..j + hashes + 1 {
                    self.bump();
                }
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c == '"' && (1..=hashes).all(|k| self.peek(k) == Some('#')) {
                        for _ in 0..=hashes {
                            self.bump();
                        }
                        break;
                    }
                    text.push(c);
                    self.bump();
                }
                self.push(TokenKind::Str, text, line, col);
                true
            }
            Some('\'') if first == Some('b') && j == 1 && hashes == 0 => {
                // Byte char literal `b'x'`.
                self.bump();
                self.char_or_lifetime(line, col);
                true
            }
            Some(c) if first == Some('r') && j == 1 && hashes == 1 && is_ident_start(c) => {
                // Raw identifier `r#ident`: token text is the bare name.
                self.bump();
                self.bump();
                self.ident(line, col);
                true
            }
            _ => false,
        }
    }

    /// Disambiguates `'a` (lifetime) from `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        self.bump(); // the opening quote
        match self.peek(0) {
            Some('\\') => {
                // Escaped char literal: consume to the closing quote.
                self.bump();
                self.bump();
                while let Some(c) = self.peek(0) {
                    self.bump();
                    if c == '\'' {
                        break;
                    }
                }
                self.push(TokenKind::Char, String::new(), line, col);
            }
            Some(c) if is_ident_start(c) && self.peek(1) != Some('\'') => {
                // Lifetime: `'` followed by an ident not closed by `'`.
                let mut name = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        name.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokenKind::Lifetime, name, line, col);
            }
            Some(_) => {
                // Plain char literal `'x'` (any single char, incl. `'''`).
                self.bump();
                if self.peek(0) == Some('\'') {
                    self.bump();
                }
                self.push(TokenKind::Char, String::new(), line, col);
            }
            None => self.push(TokenKind::Punct, "'".to_owned(), line, col),
        }
    }

    fn ident(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, text, line, col);
    }

    /// Numeric literal. Exponent signs and type suffixes split into
    /// separate tokens (`1.0e-3` → `1.0e` `-` `3`), which no rule cares
    /// about; what matters is that `1.0` never lexes `.` as punct (that
    /// would confuse method-call detection).
    fn number(&mut self, line: u32, col: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            let in_number = c.is_alphanumeric()
                || c == '_'
                || (c == '.' && self.peek(1).is_some_and(|d| d.is_ascii_digit()));
            if in_number {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Num, text, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Finds the inclusive line ranges of items behind a `#[cfg(test)]`
/// attribute: from the attribute line through the matching close brace
/// of the next `{…}` block (an attribute followed by `;` before any
/// brace opens no region).
fn cfg_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let start_line = tokens[i].line;
        // Match the attribute's closing bracket.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut saw_cfg = false;
        let mut saw_test = false;
        while j < tokens.len() {
            let t = &tokens[j];
            if t.is_punct('[') {
                depth += 1;
            } else if t.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if t.is_ident("cfg") {
                saw_cfg = true;
            } else if t.is_ident("test") {
                saw_test = true;
            }
            j += 1;
        }
        if !(saw_cfg && saw_test) || j >= tokens.len() {
            i = j.max(i + 1);
            continue;
        }
        // Attribute matched: find the item's block (or bail at `;`).
        let mut k = j + 1;
        while k < tokens.len() && !(tokens[k].is_punct('{') || tokens[k].is_punct(';')) {
            k += 1;
        }
        if k < tokens.len() && tokens[k].is_punct('{') {
            let mut braces = 0i32;
            let mut m = k;
            while m < tokens.len() {
                if tokens[m].is_punct('{') {
                    braces += 1;
                } else if tokens[m].is_punct('}') {
                    braces -= 1;
                    if braces == 0 {
                        break;
                    }
                }
                m += 1;
            }
            let end_line = tokens.get(m).map_or(u32::MAX, |t| t.line);
            out.push((start_line, end_line));
            i = m.max(i + 1);
        } else {
            i = k.max(i + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::{SourceFile, TokenKind};

    fn idents(src: &str) -> Vec<String> {
        SourceFile::lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_tokens() {
        let f = SourceFile::lex("let x = \"a.unwrap()\"; // trailing .unwrap()\n");
        assert!(!idents("let x = \"a.unwrap()\";").contains(&"unwrap".to_owned()));
        assert!(f.comment(1).unwrap().contains("trailing .unwrap()"));
    }

    #[test]
    fn multi_line_strings_are_one_token() {
        let f = SourceFile::lex("let s = \"line one\n  panic!() two\";\nlet t = 1;\n");
        assert!(!f.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(f.tokens.iter().any(|t| t.is_ident("t") && t.line == 3));
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let f = SourceFile::lex("let s = r#\"panic!(\"x\")\"#; let r#fn = 1;\n");
        assert!(!f.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(f.tokens.iter().any(|t| t.is_ident("fn")));
        let g = SourceFile::lex("let b = br#\"todo!()\"#; let c = b\"expect\";\n");
        assert!(!g.tokens.iter().any(|t| t.is_ident("todo")));
        assert!(!g.tokens.iter().any(|t| t.is_ident("expect")));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let f = SourceFile::lex("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            1
        );
        let g = SourceFile::lex("let c = '\\''; let q = '\"'; let d = 2;\n");
        assert!(g.tokens.iter().any(|t| t.is_ident("d")));
        assert_eq!(
            g.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            0
        );
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::lex("a /* one /* two */ still */ b\n/* open\nunwrap()\n*/ c\n");
        assert!(f.tokens.iter().any(|t| t.is_ident("a")));
        assert!(f.tokens.iter().any(|t| t.is_ident("b")));
        assert!(f.tokens.iter().any(|t| t.is_ident("c")));
        assert!(!f.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(f.comment(3).unwrap().contains("unwrap()"));
    }

    #[test]
    fn float_literals_do_not_emit_dot_puncts() {
        let f = SourceFile::lex("let x = 1.5 + v.norm();\n");
        let dots: Vec<_> = f.tokens.iter().filter(|t| t.is_punct('.')).collect();
        assert_eq!(dots.len(), 1, "only the method-call dot: {dots:?}");
    }

    #[test]
    fn spans_are_one_based_and_accurate() {
        let f = SourceFile::lex("fn main() {\n    x.unwrap();\n}\n");
        let unwrap = f.tokens.iter().find(|t| t.is_ident("unwrap")).unwrap();
        assert_eq!((unwrap.line, unwrap.col), (2, 7));
    }

    #[test]
    fn cfg_test_ranges_cover_the_braced_item() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let f = SourceFile::lex(src);
        assert!(!f.in_test(1));
        assert!(f.in_test(2) && f.in_test(4) && f.in_test(5));
        assert!(!f.in_test(6));
    }

    #[test]
    fn cfg_test_on_use_statement_opens_no_region() {
        let f = SourceFile::lex("#[cfg(test)]\nuse foo::bar;\nfn f() {}\n");
        assert!(!f.in_test(3));
    }

    #[test]
    fn cfg_all_test_counts_as_test() {
        let f = SourceFile::lex("#[cfg(all(test, feature = \"x\"))]\nmod t {\n fn a() {}\n}\n");
        assert!(f.in_test(3));
    }

    #[test]
    fn allow_annotations_parse_with_reason() {
        let f = SourceFile::lex("x.unwrap(); // lint: allow(no-panic) — checked above\n");
        assert!(f.allowed("no-panic", 1));
        assert!(!f.allowed("lossy-cast", 1));
        let bare = SourceFile::lex("x.unwrap(); // lint: allow(no-panic)\n");
        assert!(!bare.allowed("no-panic", 1));
    }
}
