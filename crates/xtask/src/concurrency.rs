//! Concurrency audit for the crates that own threads, locks and
//! channels (`mpdf-par`, `mpdf-obs`, `mpdf-session`).
//!
//! Three policies:
//!
//! - `lock-order` — every syntactic `.lock()` acquisition in an audited
//!   crate must name a lock declared in the workspace manifest
//!   (`LOCK_ORDER.txt`), and two acquisitions inside one function must
//!   appear in manifest rank order. The check is syntactic and
//!   conservative: it sees acquisition *sites*, not guard lifetimes, so
//!   a function that sequentially takes a high-rank then a low-rank lock
//!   is flagged even if the first guard was dropped — reorder the code
//!   or annotate why the guards never overlap.
//! - `lock-unwrap` — a `.lock()` result must never be `unwrap`ped or
//!   `expect`ed in library code (any crate): poisoning must be recovered
//!   (`PoisonError::into_inner`) or surfaced as a typed error, because a
//!   panicking worker must not cascade into every sibling that touches
//!   the same mutex.
//! - `chan-discipline` — a send into a channel (`.send()`, `.try_send()`,
//!   or `.push()` on a receiver declared as a channel in the manifest)
//!   must carry a comment within the preceding three lines documenting
//!   its backpressure and/or disconnect story (the words "backpressure"
//!   or "disconnect" must appear).
//!
//! Manifest format (`LOCK_ORDER.txt` at the workspace root): one
//! declaration per line, `lock <crate>.<receiver-ident>` in acquisition
//! order (rank = line position), or `channel <crate>.<receiver-ident>`;
//! `#` comments and blank lines are ignored.

use std::collections::BTreeSet;
use std::path::Path;

use crate::lexer::{SourceFile, TokenKind};
use crate::report::{Rule, Violation};
use crate::rules::{emit, FileCtx};
use crate::stream::{after_call, is_method_call, receiver_of};

/// Crates subject to the `lock-order` and `chan-discipline` audits.
pub const AUDIT_CRATES: &[&str] = &["par", "obs", "session"];

/// Parsed `LOCK_ORDER.txt`.
#[derive(Debug, Default)]
pub struct Manifest {
    /// Qualified lock names (`crate.receiver`) in acquisition order.
    locks: Vec<String>,
    /// Qualified channel names (`crate.receiver`).
    channels: BTreeSet<String>,
}

impl Manifest {
    /// Parses manifest text. Unrecognized lines are returned as errors
    /// (reported against the manifest file) rather than ignored, so a
    /// typo cannot silently un-declare a lock.
    #[must_use]
    pub fn parse(text: &str) -> (Manifest, Vec<(u32, String)>) {
        let mut m = Manifest::default();
        let mut errors = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let lineno = (idx + 1) as u32;
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next(), parts.next()) {
                (Some("lock"), Some(name), None) if name.contains('.') => {
                    if m.locks.iter().any(|l| l == name) {
                        errors.push((lineno, format!("duplicate lock `{name}`")));
                    } else {
                        m.locks.push(name.to_owned());
                    }
                }
                (Some("channel"), Some(name), None) if name.contains('.') => {
                    if !m.channels.insert(name.to_owned()) {
                        errors.push((lineno, format!("duplicate channel `{name}`")));
                    }
                }
                _ => errors.push((
                    lineno,
                    format!("unrecognized manifest line `{line}` (want `lock crate.name` or `channel crate.name`)"),
                )),
            }
        }
        (m, errors)
    }

    /// Rank of a qualified lock name, if declared.
    #[must_use]
    pub fn lock_rank(&self, qualified: &str) -> Option<usize> {
        self.locks.iter().position(|l| l == qualified)
    }

    /// Whether a qualified name is declared as a channel.
    #[must_use]
    pub fn is_channel(&self, qualified: &str) -> bool {
        self.channels.contains(qualified)
    }
}

/// Words that satisfy the channel-send documentation requirement.
const CHAN_DOC_WORDS: &[&str] = &["backpressure", "disconnect"];
/// How many lines above a send the documentation may sit.
const CHAN_DOC_WINDOW: u32 = 3;

/// Runs the concurrency audit over one file. `claimed` receives the
/// token indices of `unwrap`/`expect` calls reported as `lock-unwrap`,
/// so `no-panic` does not double-report them.
pub fn check(
    file: &SourceFile,
    rel: &Path,
    ctx: FileCtx<'_>,
    manifest: Option<&Manifest>,
    claimed: &mut BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    let audited = AUDIT_CRATES.contains(&ctx.crate_name);
    let toks = &file.tokens;
    // Acquisition ranks seen in the current function, for order checks.
    let mut fn_acquisitions: Vec<(usize, usize)> = Vec::new(); // (rank, token idx)
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.is_ident("fn") {
            fn_acquisitions.clear();
            continue;
        }
        if file.in_test(t.line) {
            continue;
        }
        if t.is_ident("lock") && is_method_call(toks, i) {
            check_lock_unwrap(file, rel, ctx, i, claimed, out);
            if audited {
                check_lock_order(file, rel, ctx, manifest, i, &mut fn_acquisitions, out);
            }
        }
        if audited && is_method_call(toks, i) {
            check_chan_discipline(file, rel, ctx, manifest, i, out);
        }
    }
}

fn check_lock_unwrap(
    file: &SourceFile,
    rel: &Path,
    ctx: FileCtx<'_>,
    i: usize,
    claimed: &mut BTreeSet<usize>,
    out: &mut Vec<Violation>,
) {
    if !ctx.is_library {
        return;
    }
    let toks = &file.tokens;
    let Some(after) = after_call(toks, i) else {
        return;
    };
    if !toks.get(after).is_some_and(|t| t.is_punct('.')) {
        return;
    }
    let m = after + 1;
    let Some(term) = toks.get(m) else {
        return;
    };
    if (term.is_ident("unwrap") || term.is_ident("expect"))
        && toks.get(m + 1).is_some_and(|t| t.is_punct('('))
    {
        claimed.insert(m);
        emit(
            file,
            rel,
            term,
            Rule::LockUnwrap,
            format!(
                "`.lock().{}(…)` in library code — recover poisoning with \
                 `unwrap_or_else(PoisonError::into_inner)` or return a typed \
                 error; a panicking sibling must not cascade",
                term.text
            ),
            out,
        );
    }
}

fn check_lock_order(
    file: &SourceFile,
    rel: &Path,
    ctx: FileCtx<'_>,
    manifest: Option<&Manifest>,
    i: usize,
    fn_acquisitions: &mut Vec<(usize, usize)>,
    out: &mut Vec<Violation>,
) {
    let toks = &file.tokens;
    let receiver = receiver_of(toks, i).map(|r| toks[r].text.clone());
    let Some(receiver) = receiver else {
        emit(
            file,
            rel,
            &toks[i],
            Rule::LockOrder,
            "cannot resolve this `.lock()` receiver to a named lock — bind \
             the lock to a named field/static so it can be declared in \
             LOCK_ORDER.txt"
                .to_owned(),
            out,
        );
        return;
    };
    let qualified = format!("{}.{receiver}", ctx.crate_name);
    let Some(manifest) = manifest else {
        emit(
            file,
            rel,
            &toks[i],
            Rule::LockOrder,
            format!(
                "lock `{qualified}` acquired but the workspace has no \
                 LOCK_ORDER.txt manifest — declare every audited lock there"
            ),
            out,
        );
        return;
    };
    let Some(rank) = manifest.lock_rank(&qualified) else {
        emit(
            file,
            rel,
            &toks[i],
            Rule::LockOrder,
            format!("lock `{qualified}` is not declared in LOCK_ORDER.txt"),
            out,
        );
        return;
    };
    if let Some(&(prev_rank, prev_idx)) = fn_acquisitions.last() {
        if rank < prev_rank {
            let prev = &toks[prev_idx];
            emit(
                file,
                rel,
                &toks[i],
                Rule::LockOrder,
                format!(
                    "lock `{qualified}` acquired after `{}` (line {}) against \
                     LOCK_ORDER.txt rank order — deadlock hazard; acquire in \
                     manifest order",
                    manifest.locks[prev_rank], prev.line
                ),
                out,
            );
        }
    }
    fn_acquisitions.push((rank, i));
}

fn check_chan_discipline(
    file: &SourceFile,
    rel: &Path,
    ctx: FileCtx<'_>,
    manifest: Option<&Manifest>,
    i: usize,
    out: &mut Vec<Violation>,
) {
    let toks = &file.tokens;
    let name = toks[i].text.as_str();
    let is_send = matches!(name, "send" | "try_send");
    let is_declared_push = name == "push"
        && manifest.is_some_and(|m| {
            receiver_of(toks, i)
                .map(|r| format!("{}.{}", ctx.crate_name, toks[r].text))
                .is_some_and(|q| m.is_channel(&q))
        });
    if !(is_send || is_declared_push) {
        return;
    }
    let line = toks[i].line;
    let documented = (line.saturating_sub(CHAN_DOC_WINDOW)..=line)
        .filter_map(|l| file.comment(l))
        .any(|c| {
            let lower = c.to_ascii_lowercase();
            CHAN_DOC_WORDS.iter().any(|w| lower.contains(w))
        });
    if !documented {
        emit(
            file,
            rel,
            &toks[i],
            Rule::ChanDiscipline,
            format!(
                "channel send `.{name}(…)` without a documented backpressure/\
                 disconnect story — add a comment within {CHAN_DOC_WINDOW} \
                 lines above saying what happens when the queue is full and \
                 when the other side is gone",
            ),
            out,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::{check, Manifest};
    use crate::lexer::SourceFile;
    use crate::report::Rule;
    use crate::rules::FileCtx;
    use std::collections::BTreeSet;
    use std::path::Path;

    fn manifest() -> Manifest {
        let (m, errs) = Manifest::parse(
            "# order matters\nlock par.state\nlock par.slots\nlock obs.out\nchannel par.work\n",
        );
        assert!(errs.is_empty(), "{errs:?}");
        m
    }

    fn rules_of(source: &str, crate_name: &'static str, m: Option<&Manifest>) -> Vec<Rule> {
        let file = SourceFile::lex(source);
        let ctx = FileCtx {
            crate_name,
            is_library: true,
            is_crate_root: false,
        };
        let mut claimed = BTreeSet::new();
        let mut out = Vec::new();
        check(&file, Path::new("x.rs"), ctx, m, &mut claimed, &mut out);
        out.into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn manifest_parses_and_rejects_garbage() {
        let (m, errs) =
            Manifest::parse("lock par.state\nchannel par.work\nbogus line\nlock par.state\n");
        assert_eq!(m.lock_rank("par.state"), Some(0));
        assert!(m.is_channel("par.work"));
        assert_eq!(errs.len(), 2, "{errs:?}");
    }

    #[test]
    fn declared_in_order_locks_pass() {
        let m = manifest();
        let src = "fn f(&self) {\n let a = self.state.lock();\n let b = self.slots.lock();\n drop((a, b));\n}\n";
        assert!(rules_of(src, "par", Some(&m)).is_empty());
    }

    #[test]
    fn out_of_order_and_undeclared_locks_fire() {
        let m = manifest();
        let out_of_order =
            "fn f(&self) {\n let b = self.slots.lock();\n let a = self.state.lock();\n drop((a, b));\n}\n";
        assert_eq!(
            rules_of(out_of_order, "par", Some(&m)),
            vec![Rule::LockOrder]
        );
        // Same ranks in different functions: no violation.
        let two_fns =
            "fn g(&self) { let b = self.slots.lock(); drop(b); }\nfn h(&self) { let a = self.state.lock(); drop(a); }\n";
        assert!(rules_of(two_fns, "par", Some(&m)).is_empty());
        let undeclared = "fn f(&self) { let g = self.rogue.lock(); drop(g); }\n";
        assert_eq!(rules_of(undeclared, "par", Some(&m)), vec![Rule::LockOrder]);
        // No manifest at all: every audited acquisition fires.
        assert_eq!(rules_of(undeclared, "par", None), vec![Rule::LockOrder]);
        // Outside the audit scope, lock-order does not apply.
        assert!(rules_of(undeclared, "music", Some(&m)).is_empty());
    }

    #[test]
    fn lock_unwrap_fires_everywhere_in_library_code() {
        let m = manifest();
        let unwrap = "fn f(&self) { let g = self.state.lock().unwrap(); drop(g); }\n";
        assert_eq!(rules_of(unwrap, "par", Some(&m)), vec![Rule::LockUnwrap]);
        // Also outside audited crates (music keeps a steering cache).
        let expect = "fn f(&self) { let g = CACHE.lock().expect(\"poisoned\"); drop(g); }\n";
        assert_eq!(rules_of(expect, "music", Some(&m)), vec![Rule::LockUnwrap]);
        let recovered =
            "fn f(&self) { let g = self.state.lock().unwrap_or_else(PoisonError::into_inner); drop(g); }\n";
        assert!(rules_of(recovered, "par", Some(&m)).is_empty());
    }

    #[test]
    fn channel_sends_need_documented_stories() {
        let m = manifest();
        let bare = "fn f(&self) {\n    self.work.push(1);\n}\n";
        assert_eq!(rules_of(bare, "par", Some(&m)), vec![Rule::ChanDiscipline]);
        let documented = "fn f(&self) {\n    // Backpressure: push blocks while full; on disconnect the\n    // queue is closed and push returns Err.\n    self.work.push(1);\n}\n";
        assert!(rules_of(documented, "par", Some(&m)).is_empty());
        // Vec pushes are not channel sends.
        let vec_push = "fn f(out: &mut Vec<u32>) { out.push(1); }\n";
        assert!(rules_of(vec_push, "par", Some(&m)).is_empty());
        // send/try_send always count as channel sends in audited crates.
        let send = "fn f(&self) { self.tx.send(1); }\n";
        assert_eq!(rules_of(send, "obs", Some(&m)), vec![Rule::ChanDiscipline]);
        // …but not outside them.
        assert!(rules_of(send, "eval", Some(&m)).is_empty());
    }

    #[test]
    fn escape_hatch_applies() {
        let m = manifest();
        let src = "fn f(&self) {\n    // lint: allow(chan-discipline) — fixture: send is infallible here\n    self.tx.send(1);\n}\n";
        assert!(rules_of(src, "obs", Some(&m)).is_empty());
    }
}
