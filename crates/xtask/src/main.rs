//! Workspace automation entry point, invoked as `cargo xtask <command>`.
//!
//! The binary is intentionally std-only so it builds and runs without any
//! network access to a crate registry — it is part of the tier-1 gate and
//! must work in the fully offline build container.
//!
//! Commands:
//!
//! - `cargo xtask lint [--root <path>]` — run the repo-specific static
//!   analysis suite over all first-party source (see [`lint`] for the
//!   rule table). Exits non-zero if any violation is found.
//! - `cargo xtask rules` — print the rule names and one-line policies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;
use std::path::PathBuf;
use std::process::ExitCode;

mod lint;
mod scan;

use lint::Rule;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: cargo xtask <lint [--root <path>] | rules>");
            ExitCode::FAILURE
        }
    }
}

fn print_rules() {
    println!("cargo xtask lint enforces:");
    for rule in Rule::all() {
        println!("  {}", rule.name());
    }
    println!("escape hatch: `// lint: allow(<rule>) — <reason>` on or above the line");
}

fn run_lint(args: &[String]) -> ExitCode {
    let root = match parse_root(args) {
        Ok(root) => root,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match lint::lint_workspace(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("xtask lint: clean ({} rules)", Rule::all().len());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "xtask lint: {} violation(s); annotate intentional ones with \
                 `// lint: allow(<rule>) — <reason>`",
                violations.len()
            );
            ExitCode::FAILURE
        }
        Err(err) => {
            eprintln!("xtask lint: i/o error: {err}");
            ExitCode::FAILURE
        }
    }
}

/// Resolves the workspace root: `--root <path>` argument, the
/// `CARGO_MANIFEST_DIR`-derived default when run via `cargo xtask`, or
/// the current directory.
fn parse_root(args: &[String]) -> Result<PathBuf, String> {
    if let Some(pos) = args.iter().position(|a| a == "--root") {
        return args
            .get(pos + 1)
            .map(PathBuf::from)
            .ok_or_else(|| "--root requires a path argument".to_owned());
    }
    if let Some(manifest_dir) = env::var_os("CARGO_MANIFEST_DIR") {
        // crates/xtask → workspace root is two levels up.
        let dir = PathBuf::from(manifest_dir);
        if let Some(root) = dir.ancestors().nth(2) {
            return Ok(root.to_path_buf());
        }
    }
    env::current_dir().map_err(|e| format!("cannot resolve workspace root: {e}"))
}
