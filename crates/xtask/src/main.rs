//! Workspace automation entry point, invoked as `cargo xtask <command>`.
//!
//! The binary is intentionally std-only so it builds and runs without any
//! network access to a crate registry — it is part of the tier-1 gate and
//! must work in the fully offline build container.
//!
//! Commands:
//!
//! - `cargo xtask lint [--root <path>] [--json [<path>]]` — run the
//!   repo-specific static analysis suite over all first-party source
//!   (see [`xtask::lint`] for the engine and [`xtask::report::Rule`]
//!   for the rule table). Exits 1 if any violation is found, 2 on
//!   usage or I/O errors. With `--json` and no path the machine report
//!   replaces the human output on stdout; with `--json <path>` the
//!   report is written to the file and the human lines still print.
//! - `cargo xtask rules` — print the rule names and one-line policies.
//! - `cargo xtask bench-diff <old.json> <new.json> [--threshold <pct>]`
//!   — compare two `BENCH_*.json` reports by benchmark name and exit 1
//!   if any mean regressed beyond the threshold (default 25%). CI's
//!   bench job diffs freshly generated numbers against the committed
//!   reference so hot-path regressions fail loudly.
//! - `cargo xtask trace-report <trace.ndjson> [--top <n>] [--json]
//!   [--collapse <path>] [--strict]` — reconstruct the span trees of a
//!   `repro --trace` capture and print the hotspot table and critical
//!   path (or the machine report with `--json`). `--collapse` writes
//!   flamegraph-compatible collapsed stacks. Incomplete traces warn on
//!   stderr; `--strict` turns those warnings into exit 1.
//! - `cargo xtask obs-diff <old.json> <new.json> --budgets <manifest>`
//!   — gate two `OBS_metrics.json` snapshots against the per-metric
//!   latency/allocation budgets in `OBS_budgets.txt`; exit 1 on any
//!   violated budget, mirroring `bench-diff` in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use xtask::benchdiff;
use xtask::lint;
use xtask::obsdiff;
use xtask::report::{self, Rule};
use xtask::tracereport;

/// Exit code for violations found (distinct from usage/I/O errors).
const EXIT_FINDINGS: u8 = 1;
/// Exit code for usage or I/O errors.
const EXIT_ERROR: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(&args[1..]),
        Some("rules") => {
            print_rules();
            ExitCode::SUCCESS
        }
        Some("bench-diff") => run_bench_diff(&args[1..]),
        Some("trace-report") => run_trace_report(&args[1..]),
        Some("obs-diff") => run_obs_diff(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask <lint [--root <path>] [--json [<path>]] | rules | \
                 bench-diff <old.json> <new.json> [--threshold <pct>] | \
                 trace-report <trace.ndjson> [--top <n>] [--json] [--collapse <path>] \
                 [--strict] | \
                 obs-diff <old.json> <new.json> --budgets <manifest>>"
            );
            ExitCode::from(EXIT_ERROR)
        }
    }
}

fn print_rules() {
    println!("cargo xtask lint enforces:");
    for rule in Rule::all() {
        println!("  {:<18} {}", rule.name(), rule.policy());
    }
    println!("escape hatch: `// lint: allow(<rule>) — <reason>` on or above the line");
}

/// Parsed `lint` subcommand options.
struct LintOpts {
    root: PathBuf,
    /// `None` = no JSON; `Some(None)` = JSON to stdout (replaces human
    /// output); `Some(Some(path))` = JSON to file, human output kept.
    json: Option<Option<PathBuf>>,
}

fn run_lint(args: &[String]) -> ExitCode {
    let opts = match parse_opts(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let violations = match lint::lint_workspace(&opts.root) {
        Ok(violations) => violations,
        Err(err) => {
            eprintln!("xtask lint: i/o error: {err}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let json_to_stdout = matches!(opts.json, Some(None));
    if let Some(dest) = &opts.json {
        let json = report::to_json(&violations);
        match dest {
            None => print!("{json}"),
            Some(path) => {
                if let Err(err) = fs::write(path, &json) {
                    eprintln!("xtask lint: cannot write {}: {err}", path.display());
                    return ExitCode::from(EXIT_ERROR);
                }
            }
        }
    }
    if !json_to_stdout {
        if violations.is_empty() {
            println!("xtask lint: clean ({} rules)", Rule::all().len());
        } else {
            for v in &violations {
                println!("{v}");
            }
            println!(
                "xtask lint: {} violation(s); annotate intentional ones with \
                 `// lint: allow(<rule>) — <reason>`",
                violations.len()
            );
        }
    }
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    }
}

/// Runs `bench-diff <old.json> <new.json> [--threshold <pct>]`.
fn run_bench_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut threshold_pct = 25.0;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--threshold" {
            let Some(raw) = args.get(i + 1) else {
                eprintln!("--threshold requires a percent argument");
                return ExitCode::from(EXIT_ERROR);
            };
            match raw.parse::<f64>() {
                Ok(pct) if pct.is_finite() && pct >= 0.0 => threshold_pct = pct,
                _ => {
                    eprintln!("--threshold must be a non-negative number, got `{raw}`");
                    return ExitCode::from(EXIT_ERROR);
                }
            }
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        eprintln!("usage: cargo xtask bench-diff <old.json> <new.json> [--threshold <pct>]");
        return ExitCode::from(EXIT_ERROR);
    };
    let load = |path: &str| -> Result<Vec<benchdiff::BenchRecord>, String> {
        let text = fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
        benchdiff::parse_report(&text).map_err(|err| format!("{path}: {err}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(old), Ok(new)) => (old, new),
        (Err(err), _) | (_, Err(err)) => {
            eprintln!("xtask bench-diff: {err}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let d = benchdiff::diff(&old, &new, threshold_pct);
    for entry in &d.improvements {
        println!("improved   {entry}");
    }
    for entry in &d.regressions {
        println!("REGRESSED  {entry}");
    }
    for name in &d.missing {
        println!("missing    {name} (in {old_path} only)");
    }
    for name in &d.added {
        println!("added      {name} (in {new_path} only)");
    }
    println!(
        "xtask bench-diff: {} regressed, {} improved, {} within ±{threshold_pct}% \
         ({} missing, {} added)",
        d.regressions.len(),
        d.improvements.len(),
        d.unchanged.len(),
        d.missing.len(),
        d.added.len()
    );
    if d.regressions.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    }
}

/// Runs `trace-report <trace.ndjson> [--top <n>] [--json]
/// [--collapse <path>] [--strict]`.
fn run_trace_report(args: &[String]) -> ExitCode {
    let mut path: Option<&String> = None;
    let mut top = 15usize;
    let mut json = false;
    let mut strict = false;
    let mut collapse: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--top" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("--top requires a count argument");
                    return ExitCode::from(EXIT_ERROR);
                };
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => top = n,
                    _ => {
                        eprintln!("--top must be a positive integer, got `{raw}`");
                        return ExitCode::from(EXIT_ERROR);
                    }
                }
                i += 2;
            }
            "--json" => {
                json = true;
                i += 1;
            }
            "--strict" => {
                strict = true;
                i += 1;
            }
            "--collapse" => {
                let Some(raw) = args.get(i + 1) else {
                    eprintln!("--collapse requires a path argument");
                    return ExitCode::from(EXIT_ERROR);
                };
                collapse = Some(PathBuf::from(raw));
                i += 2;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown trace-report argument `{other}`");
                return ExitCode::from(EXIT_ERROR);
            }
            _ if path.is_none() => {
                path = Some(&args[i]);
                i += 1;
            }
            other => {
                eprintln!("unexpected extra operand `{other}`");
                return ExitCode::from(EXIT_ERROR);
            }
        }
    }
    let Some(path) = path else {
        eprintln!(
            "usage: cargo xtask trace-report <trace.ndjson> [--top <n>] [--json] \
             [--collapse <path>] [--strict]"
        );
        return ExitCode::from(EXIT_ERROR);
    };
    let text = match fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("xtask trace-report: cannot read {path}: {err}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let profile = tracereport::analyze(&text);
    if let Some(warning) = tracereport::anomaly_warning(&profile) {
        eprintln!("xtask trace-report: {warning}");
    }
    if let Some(dest) = &collapse {
        let stacks = mpdf_obs::profile::collapsed_stacks(&profile);
        if let Err(err) = fs::write(dest, stacks) {
            eprintln!("xtask trace-report: cannot write {}: {err}", dest.display());
            return ExitCode::from(EXIT_ERROR);
        }
    }
    if json {
        print!("{}", mpdf_obs::profile::to_json(&profile, top));
    } else {
        print!("{}", tracereport::render_human(&profile, top));
    }
    if strict && profile.anomalies.any() {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs `obs-diff <old.json> <new.json> --budgets <manifest>`.
fn run_obs_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<&String> = Vec::new();
    let mut budgets_path: Option<&String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--budgets" {
            let Some(raw) = args.get(i + 1) else {
                eprintln!("--budgets requires a manifest path argument");
                return ExitCode::from(EXIT_ERROR);
            };
            budgets_path = Some(raw);
            i += 2;
        } else {
            paths.push(&args[i]);
            i += 1;
        }
    }
    let ([old_path, new_path], Some(budgets_path)) = (paths.as_slice(), budgets_path) else {
        eprintln!("usage: cargo xtask obs-diff <old.json> <new.json> --budgets <manifest>");
        return ExitCode::from(EXIT_ERROR);
    };
    let load_doc = |path: &str| -> Result<obsdiff::MetricsDoc, String> {
        let text = fs::read_to_string(path).map_err(|err| format!("cannot read {path}: {err}"))?;
        obsdiff::parse_metrics(&text).map_err(|err| format!("{path}: {err}"))
    };
    let load_budgets = || -> Result<Vec<obsdiff::Budget>, String> {
        let text = fs::read_to_string(budgets_path)
            .map_err(|err| format!("cannot read {budgets_path}: {err}"))?;
        obsdiff::parse_budgets(&text).map_err(|err| format!("{budgets_path}: {err}"))
    };
    let (old, new, budgets) = match (load_doc(old_path), load_doc(new_path), load_budgets()) {
        (Ok(old), Ok(new), Ok(budgets)) => (old, new, budgets),
        (Err(err), _, _) | (_, Err(err), _) | (_, _, Err(err)) => {
            eprintln!("xtask obs-diff: {err}");
            return ExitCode::from(EXIT_ERROR);
        }
    };
    let d = obsdiff::check(&old, &new, &budgets);
    for violation in &d.violations {
        println!("OVER BUDGET  {violation}");
    }
    for note in &d.skipped {
        println!("skipped      {note}");
    }
    println!(
        "xtask obs-diff: {} over budget, {} within, {} skipped ({} budget(s) checked)",
        d.violations.len(),
        d.passed,
        d.skipped.len(),
        budgets.len()
    );
    if d.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    }
}

fn parse_opts(args: &[String]) -> Result<LintOpts, String> {
    let mut root: Option<PathBuf> = None;
    let mut json: Option<Option<PathBuf>> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let path = args
                    .get(i + 1)
                    .ok_or_else(|| "--root requires a path argument".to_owned())?;
                root = Some(PathBuf::from(path));
                i += 2;
            }
            "--json" => {
                // Optional path operand: consume the next argument iff
                // it is not a flag.
                match args.get(i + 1) {
                    Some(next) if !next.starts_with("--") => {
                        json = Some(Some(PathBuf::from(next)));
                        i += 2;
                    }
                    _ => {
                        json = Some(None);
                        i += 1;
                    }
                }
            }
            other => return Err(format!("unknown lint argument `{other}`")),
        }
    }
    let root = match root {
        Some(root) => root,
        None => default_root()?,
    };
    Ok(LintOpts { root, json })
}

/// Resolves the workspace root: the `CARGO_MANIFEST_DIR`-derived default
/// when run via `cargo xtask`, or the current directory.
fn default_root() -> Result<PathBuf, String> {
    if let Some(manifest_dir) = env::var_os("CARGO_MANIFEST_DIR") {
        // crates/xtask → workspace root is two levels up.
        let dir = PathBuf::from(manifest_dir);
        if let Some(root) = dir.ancestors().nth(2) {
            return Ok(root.to_path_buf());
        }
    }
    env::current_dir().map_err(|e| format!("cannot resolve workspace root: {e}"))
}
