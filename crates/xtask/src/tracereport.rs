//! `trace-report`: span-stream analysis of a `repro --trace` NDJSON
//! capture.
//!
//! The heavy lifting — stream parsing, per-thread span-tree
//! reconstruction, self/total attribution, critical path, collapsed
//! stacks — lives in `mpdf_obs::profile` (the library owns its wire
//! format; the tool just drives it). This module turns a trace file's
//! text into a [`Profile`] and renders the human report; the binary
//! decides exit codes and where the output goes.

use mpdf_obs::profile::{self, Profile};

/// Analyzes a trace capture: parses the NDJSON text (totally — torn
/// lines are counted, not fatal) and reconstructs the span forest.
#[must_use]
pub fn analyze(text: &str) -> Profile {
    let (events, malformed) = profile::parse_ndjson(text);
    let mut prof = profile::reconstruct(&events);
    prof.anomalies.malformed_lines = malformed;
    prof
}

/// Renders the human report: stream summary, top-`top` hotspot table,
/// critical path. Deterministic for a given trace file.
#[must_use]
pub fn render_human(prof: &Profile, top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} events, {} thread(s), {:.3} ms wall\n\n",
        prof.events,
        prof.threads.len(),
        prof.wall_ns as f64 / 1e6
    ));
    out.push_str("hotspots (by self time):\n");
    out.push_str(&profile::hotspot_table(prof, top));
    out.push_str("\ncritical path:\n");
    out.push_str(&profile::critical_path_text(prof));
    out
}

/// One-line warning when the reconstruction had to repair the stream,
/// or `None` for a clean trace. The binary prints this to stderr so the
/// report itself never silently presents a truncated tree as complete.
#[must_use]
pub fn anomaly_warning(prof: &Profile) -> Option<String> {
    let a = &prof.anomalies;
    if !a.any() {
        return None;
    }
    Some(format!(
        "warning: incomplete trace — {} malformed line(s), {} unmatched exit(s), \
         {} mismatched nesting(s), {} unclosed span(s), {} dropped event(s); \
         the tree below is reconstructed from what survived",
        a.malformed_lines,
        a.unmatched_exits,
        a.mismatched_nesting,
        a.unclosed_spans,
        a.dropped_events
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    use mpdf_obs::trace::{SpanEvent, SpanKind};

    fn ndjson(events: &[SpanEvent]) -> String {
        events
            .iter()
            .map(|e| e.to_ndjson() + "\n")
            .collect::<String>()
    }

    fn exit(name: &'static str, ts_ns: u64, elapsed_ns: u64) -> SpanEvent {
        SpanEvent {
            kind: SpanKind::Exit,
            name,
            parent: None,
            depth: 1,
            thread: 1,
            ts_ns,
            elapsed_ns,
        }
    }

    fn enter(name: &'static str, ts_ns: u64) -> SpanEvent {
        SpanEvent {
            kind: SpanKind::Enter,
            ..exit(name, ts_ns, 0)
        }
    }

    #[test]
    fn analyze_builds_a_deterministic_report() {
        let text = ndjson(&[
            enter("eval.window", 0),
            enter("music.scan", 10),
            exit("music.scan", 80, 70),
            exit("eval.window", 100, 100),
        ]);
        let prof = analyze(&text);
        assert!(anomaly_warning(&prof).is_none());
        let report = render_human(&prof, 10);
        assert!(report.contains("hotspots"), "{report}");
        assert!(report.contains("music.scan"), "{report}");
        assert!(report.contains("critical path"), "{report}");
        assert_eq!(report, render_human(&analyze(&text), 10));
        // music.scan carries 70 of the 100ns, so it leads the table.
        let scan_at = report.find("music.scan").expect("scan row");
        let window_at = report.find("eval.window").expect("window row");
        assert!(scan_at < window_at, "{report}");
    }

    #[test]
    fn torn_capture_warns_but_reports() {
        let mut text = ndjson(&[enter("eval.window", 0), enter("music.scan", 10)]);
        text.push_str("{\"ev\":\"exit\",\"span\":\"musi"); // killed mid-write
        let prof = analyze(&text);
        let warning = anomaly_warning(&prof).expect("anomalies present");
        assert!(warning.contains("1 malformed line(s)"), "{warning}");
        assert!(warning.contains("2 unclosed span(s)"), "{warning}");
        assert!(render_human(&prof, 10).contains("music.scan"));
    }
}
