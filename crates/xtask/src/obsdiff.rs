//! Observability SLO gate: diff two `OBS_metrics.json` snapshots
//! against a per-metric budget manifest (`OBS_budgets.txt`).
//!
//! `bench-diff` gates wall-time per iteration; this gates the
//! observability counters and per-stage latency histograms the pipeline
//! itself exports — window/decision counts, quarantine volume, stage
//! p95s, allocation totals (`obs.alloc.*` with the `alloc-count`
//! feature). CI runs `cargo xtask obs-diff <old.json> <new.json>
//! --budgets OBS_budgets.txt` after an instrumented repro, so a stage
//! whose latency or allocation volume quietly blows past its budget
//! fails the job the same way a bench regression does.
//!
//! ## Budget manifest grammar
//!
//! One declaration per line; `#` starts a comment. `<stat>` picks a
//! histogram summary field: `count`, `mean` (sum/count), `p50`, `p95`,
//! `p99`, or `max`.
//!
//! ```text
//! counter <name> max <value>   # new value must be ≤ value
//! counter <name> grow <pct>    # new ≤ old × (1 + pct/100)
//! gauge   <name> max <value>   # new value must be ≤ value
//! hist    <name> <stat> max <value>
//! hist    <name> <stat> grow <pct>
//! ```
//!
//! `max` budgets are absolute SLOs: the metric must exist in the new
//! snapshot and sit at or under the bound — a budgeted metric that
//! disappeared is a violation, not a pass. `grow` budgets are relative
//! gates against the old snapshot; when the old snapshot lacks the
//! metric there is no baseline to grow from, so the check is skipped
//! (reported as a note, exit 0).

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{parse_document, Json};

/// Histogram summary as exported by `Snapshot::to_json`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: f64,
    /// Sum of all samples in nanoseconds.
    pub sum_ns: f64,
    /// Smallest sample.
    pub min_ns: f64,
    /// Largest sample.
    pub max_ns: f64,
    /// Interpolated 50th percentile.
    pub p50_ns: f64,
    /// Interpolated 95th percentile.
    pub p95_ns: f64,
    /// Interpolated 99th percentile.
    pub p99_ns: f64,
}

impl HistSummary {
    /// Extracts the named summary statistic.
    fn stat(&self, stat: HistStat) -> f64 {
        match stat {
            HistStat::Count => self.count,
            HistStat::Mean => {
                if self.count > 0.0 {
                    self.sum_ns / self.count
                } else {
                    0.0
                }
            }
            HistStat::P50 => self.p50_ns,
            HistStat::P95 => self.p95_ns,
            HistStat::P99 => self.p99_ns,
            HistStat::Max => self.max_ns,
        }
    }
}

/// A parsed `OBS_metrics.json` snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsDoc {
    /// Counter name → value.
    pub counters: BTreeMap<String, f64>,
    /// Gauge name → value.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram name → summary.
    pub histograms: BTreeMap<String, HistSummary>,
}

/// Parses an `OBS_metrics.json` document: a top-level object with
/// `counters`, `gauges` and `histograms` sub-objects (each optional —
/// an empty snapshot is valid). Unknown fields are ignored.
///
/// # Errors
/// Describes the first malformed construct.
pub fn parse_metrics(text: &str) -> Result<MetricsDoc, String> {
    let Json::Obj(fields) = parse_document(text)? else {
        return Err("metrics snapshot must be a top-level JSON object".to_owned());
    };
    let mut doc = MetricsDoc::default();
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("counters", Json::Obj(entries)) => {
                for (name, value) in entries {
                    let Json::Num(n) = value else {
                        return Err(format!("counter `{name}`: expected a number"));
                    };
                    doc.counters.insert(name, n);
                }
            }
            ("gauges", Json::Obj(entries)) => {
                for (name, value) in entries {
                    let Json::Num(n) = value else {
                        return Err(format!("gauge `{name}`: expected a number"));
                    };
                    doc.gauges.insert(name, n);
                }
            }
            ("histograms", Json::Obj(entries)) => {
                for (name, value) in entries {
                    let Json::Obj(stats) = value else {
                        return Err(format!("histogram `{name}`: expected an object"));
                    };
                    let mut h = HistSummary::default();
                    for (stat, value) in stats {
                        let Json::Num(n) = value else {
                            return Err(format!("histogram `{name}`.{stat}: expected a number"));
                        };
                        match stat.as_str() {
                            "count" => h.count = n,
                            "sum_ns" => h.sum_ns = n,
                            "min_ns" => h.min_ns = n,
                            "max_ns" => h.max_ns = n,
                            "p50_ns" => h.p50_ns = n,
                            "p95_ns" => h.p95_ns = n,
                            "p99_ns" => h.p99_ns = n,
                            _ => {}
                        }
                    }
                    doc.histograms.insert(name, h);
                }
            }
            _ => {}
        }
    }
    Ok(doc)
}

/// Which metric table a budget addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// A `counters` entry.
    Counter,
    /// A `gauges` entry.
    Gauge,
    /// A `histograms` entry (with a [`HistStat`]).
    Hist,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Hist => "hist",
        })
    }
}

/// Histogram summary statistic addressed by a `hist` budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistStat {
    /// Sample count.
    Count,
    /// `sum_ns / count`.
    Mean,
    /// 50th percentile.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// Largest sample.
    Max,
}

impl HistStat {
    fn parse(word: &str) -> Option<HistStat> {
        match word {
            "count" => Some(HistStat::Count),
            "mean" => Some(HistStat::Mean),
            "p50" => Some(HistStat::P50),
            "p95" => Some(HistStat::P95),
            "p99" => Some(HistStat::P99),
            "max" => Some(HistStat::Max),
            _ => None,
        }
    }
}

impl fmt::Display for HistStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HistStat::Count => "count",
            HistStat::Mean => "mean",
            HistStat::P50 => "p50",
            HistStat::P95 => "p95",
            HistStat::P99 => "p99",
            HistStat::Max => "max",
        })
    }
}

/// `max` (absolute bound) or `grow` (relative bound vs the old value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BudgetOp {
    /// New value must be ≤ the bound.
    Max(f64),
    /// New value must be ≤ old × (1 + pct/100).
    Grow(f64),
}

/// One parsed budget declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Budget {
    /// Metric table.
    pub kind: MetricKind,
    /// Metric name.
    pub name: String,
    /// Summary statistic (histogram budgets only).
    pub stat: Option<HistStat>,
    /// Bound.
    pub op: BudgetOp,
    /// 1-based manifest line, for error messages.
    pub line: usize,
}

impl Budget {
    fn subject(&self) -> String {
        match self.stat {
            Some(stat) => format!("{} {} {stat}", self.kind, self.name),
            None => format!("{} {}", self.kind, self.name),
        }
    }
}

/// Parses a budget manifest (see the module docs for the grammar).
///
/// # Errors
/// Describes the first malformed line, with its line number.
pub fn parse_budgets(text: &str) -> Result<Vec<Budget>, String> {
    let mut budgets = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let decl = raw.split('#').next().unwrap_or("").trim();
        if decl.is_empty() {
            continue;
        }
        let words: Vec<&str> = decl.split_whitespace().collect();
        let err = |msg: &str| Err(format!("budget line {line}: {msg} in `{decl}`"));
        let kind = match words.first().copied() {
            Some("counter") => MetricKind::Counter,
            Some("gauge") => MetricKind::Gauge,
            Some("hist") => MetricKind::Hist,
            _ => return err("expected `counter`, `gauge` or `hist`"),
        };
        let expected = if kind == MetricKind::Hist { 5 } else { 4 };
        if words.len() != expected {
            return err("wrong number of fields");
        }
        let name = words[1].to_owned();
        let stat = if kind == MetricKind::Hist {
            match HistStat::parse(words[2]) {
                Some(stat) => Some(stat),
                None => return err("unknown histogram stat"),
            }
        } else {
            None
        };
        let (op_word, value_word) = (words[expected - 2], words[expected - 1]);
        let Ok(value) = value_word.parse::<f64>() else {
            return err("bound is not a number");
        };
        if !value.is_finite() || value < 0.0 {
            return err("bound must be finite and non-negative");
        }
        let op = match op_word {
            "max" => BudgetOp::Max(value),
            "grow" => BudgetOp::Grow(value),
            _ => return err("expected `max` or `grow`"),
        };
        budgets.push(Budget {
            kind,
            name,
            stat,
            op,
            line,
        });
    }
    Ok(budgets)
}

/// A budget that did not hold.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The budget that failed.
    pub budget: Budget,
    /// Observed new value (`None` = the budgeted metric is missing).
    pub observed: Option<f64>,
    /// The effective bound the observation was checked against.
    pub bound: f64,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.observed {
            Some(observed) => write!(
                f,
                "{:<44} {observed:>14.1} > budget {:.1}",
                self.budget.subject(),
                self.bound
            ),
            None => write!(
                f,
                "{:<44} missing from the new snapshot (budget {:.1})",
                self.budget.subject(),
                self.bound
            ),
        }
    }
}

/// Outcome of checking one snapshot pair against a manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsDiff {
    /// Budgets that failed.
    pub violations: Vec<Violation>,
    /// Budgets that held.
    pub passed: usize,
    /// `grow` budgets skipped for lack of an old baseline.
    pub skipped: Vec<String>,
}

/// Looks a budget's subject value up in a snapshot.
fn lookup(doc: &MetricsDoc, budget: &Budget) -> Option<f64> {
    match budget.kind {
        MetricKind::Counter => doc.counters.get(&budget.name).copied(),
        MetricKind::Gauge => doc.gauges.get(&budget.name).copied(),
        MetricKind::Hist => doc
            .histograms
            .get(&budget.name)
            .map(|h| h.stat(budget.stat.unwrap_or(HistStat::Mean))),
    }
}

/// Checks `new` against every budget, with `old` as the baseline for
/// `grow` bounds.
pub fn check(old: &MetricsDoc, new: &MetricsDoc, budgets: &[Budget]) -> ObsDiff {
    let mut out = ObsDiff::default();
    for budget in budgets {
        let observed = lookup(new, budget);
        let bound = match budget.op {
            BudgetOp::Max(bound) => bound,
            BudgetOp::Grow(pct) => match lookup(old, budget) {
                Some(old_value) => old_value * (1.0 + pct / 100.0),
                None => {
                    out.skipped.push(format!(
                        "{} (no baseline in the old snapshot)",
                        budget.subject()
                    ));
                    continue;
                }
            },
        };
        match observed {
            Some(value) if value <= bound => out.passed += 1,
            observed => out.violations.push(Violation {
                budget: budget.clone(),
                observed,
                bound,
            }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SNAPSHOT: &str = r#"{
        "counters": { "eval.windows_total": 128, "obs.alloc.bytes_total": 4096 },
        "gauges": { "par.queue_depth_max": 7 },
        "histograms": {
            "eval.window": {"count": 128, "sum_ns": 1280000, "min_ns": 5000,
                            "max_ns": 30000, "p50_ns": 9000.0, "p95_ns": 21000.0,
                            "p99_ns": 28000.0}
        }
    }"#;

    #[test]
    fn parses_the_snapshot_format() {
        let doc = parse_metrics(SNAPSHOT).expect("parse");
        assert_eq!(doc.counters["eval.windows_total"], 128.0);
        assert_eq!(doc.gauges["par.queue_depth_max"], 7.0);
        let h = doc.histograms["eval.window"];
        assert_eq!(h.count, 128.0);
        assert_eq!(h.stat(HistStat::Mean), 10000.0);
        assert_eq!(h.stat(HistStat::P95), 21000.0);
    }

    #[test]
    fn rejects_malformed_snapshots() {
        assert!(parse_metrics("[]").is_err());
        assert!(parse_metrics("{\"counters\": {\"x\": \"nan\"}}").is_err());
        assert!(parse_metrics("{} garbage").is_err());
    }

    #[test]
    fn parses_every_budget_form() {
        let budgets = parse_budgets(
            "# latency/allocation SLOs\n\
             counter eval.windows_total max 200\n\
             counter obs.alloc.bytes_total grow 50  # trailing comment\n\
             gauge par.queue_depth_max max 64\n\
             hist eval.window p95 max 1000000\n\
             hist eval.window mean grow 100\n",
        )
        .expect("parse");
        assert_eq!(budgets.len(), 5);
        assert_eq!(budgets[0].kind, MetricKind::Counter);
        assert_eq!(budgets[0].op, BudgetOp::Max(200.0));
        assert_eq!(budgets[1].op, BudgetOp::Grow(50.0));
        assert_eq!(budgets[3].stat, Some(HistStat::P95));
        assert_eq!(budgets[4].line, 6);
    }

    #[test]
    fn rejects_malformed_budget_lines() {
        for bad in [
            "timer x max 5",
            "counter x min 5",
            "counter x max",
            "counter x max nan_squared",
            "hist x p97 max 5",
            "counter x max -3",
            "hist x mean grow 10 extra",
        ] {
            let err = parse_budgets(bad).expect_err(bad);
            assert!(err.contains("line 1"), "{err}");
        }
    }

    #[test]
    fn max_budgets_gate_absolute_values() {
        let doc = parse_metrics(SNAPSHOT).expect("parse");
        let budgets = parse_budgets(
            "counter eval.windows_total max 100\n\
             hist eval.window p95 max 50000\n",
        )
        .expect("budgets");
        let d = check(&doc, &doc, &budgets);
        assert_eq!(d.violations.len(), 1);
        assert_eq!(d.violations[0].budget.name, "eval.windows_total");
        assert_eq!(d.violations[0].observed, Some(128.0));
        assert_eq!(d.passed, 1);
    }

    #[test]
    fn grow_budgets_gate_against_the_old_snapshot() {
        let old = parse_metrics(SNAPSHOT).expect("old");
        let new = parse_metrics(&SNAPSHOT.replace(
            "\"obs.alloc.bytes_total\": 4096",
            "\"obs.alloc.bytes_total\": 9000",
        ))
        .expect("new");
        let budgets = parse_budgets("counter obs.alloc.bytes_total grow 100\n").expect("budgets");
        let d = check(&old, &new, &budgets);
        // Bound is 4096 × (1 + 100/100) = 8192; the new 9000 exceeds it.
        assert_eq!(d.violations.len(), 1);
        assert!((d.violations[0].bound - 8192.0).abs() < 1e-9);
    }

    #[test]
    fn missing_budgeted_metric_is_a_violation_for_max() {
        let doc = parse_metrics(SNAPSHOT).expect("parse");
        let budgets = parse_budgets("counter no.such_metric max 10\n").expect("budgets");
        let d = check(&doc, &doc, &budgets);
        assert_eq!(d.violations.len(), 1);
        assert_eq!(d.violations[0].observed, None);
    }

    #[test]
    fn grow_without_baseline_is_skipped_not_failed() {
        let doc = parse_metrics(SNAPSHOT).expect("parse");
        let budgets = parse_budgets("counter no.such_metric grow 10\n").expect("budgets");
        let d = check(&doc, &doc, &budgets);
        assert!(d.violations.is_empty());
        assert_eq!(d.skipped.len(), 1);
    }
}
