//! Bench-report comparison: flag regressions between two `BENCH_*.json`
//! files produced by the vendored criterion stand-in.
//!
//! A report is a JSON array of records shaped like
//! `{"name": "group/bench", "mean_ns_per_iter": 1234.5, ...}`; this
//! module parses two of them (with the shared std-only reader in
//! [`crate::json`]), joins the records by name and classifies
//! each pair by the relative change of `mean_ns_per_iter`. CI runs it as
//! `cargo xtask bench-diff <old.json> <new.json> [--threshold <pct>]`
//! after regenerating benches, so a hot-path regression fails the job
//! instead of silently landing in the committed reference numbers.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{parse_document, Json};

/// One benchmark's name and mean cost from a report file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Benchmark name, e.g. `detection/score_combined_25pkt`.
    pub name: String,
    /// Mean wall time per iteration in nanoseconds.
    pub mean_ns_per_iter: f64,
}

/// One benchmark present in both reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Benchmark name.
    pub name: String,
    /// Mean ns/iter in the old report.
    pub old_ns: f64,
    /// Mean ns/iter in the new report.
    pub new_ns: f64,
    /// Signed relative change in percent (`+` = slower = regression).
    pub change_pct: f64,
}

impl fmt::Display for DiffEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<44} {:>14.1} -> {:>14.1} ns/iter  ({:+.1}%)",
            self.name, self.old_ns, self.new_ns, self.change_pct
        )
    }
}

/// Classified comparison of two bench reports.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchDiff {
    /// Slower than the threshold allows.
    pub regressions: Vec<DiffEntry>,
    /// Faster by more than the threshold.
    pub improvements: Vec<DiffEntry>,
    /// Within the threshold either way.
    pub unchanged: Vec<DiffEntry>,
    /// Names only the old report has (bench removed or not run).
    pub missing: Vec<String>,
    /// Names only the new report has.
    pub added: Vec<String>,
}

/// Parses a bench report: a JSON array of objects carrying at least
/// `name` (string) and `mean_ns_per_iter` (number). Unknown fields are
/// ignored so the format can grow.
///
/// # Errors
/// A description of the first malformed construct (bad JSON, non-array
/// top level, records without the two required fields).
pub fn parse_report(text: &str) -> Result<Vec<BenchRecord>, String> {
    let Json::Arr(items) = parse_document(text)? else {
        return Err("bench report must be a top-level JSON array".to_owned());
    };
    let mut records = Vec::with_capacity(items.len());
    for (i, item) in items.into_iter().enumerate() {
        let Json::Obj(fields) = item else {
            return Err(format!("record {i}: expected a JSON object"));
        };
        let mut name = None;
        let mut mean = None;
        for (key, value) in fields {
            match (key.as_str(), value) {
                ("name", Json::Str(s)) => name = Some(s),
                ("mean_ns_per_iter", Json::Num(n)) => mean = Some(n),
                _ => {}
            }
        }
        match (name, mean) {
            (Some(name), Some(mean_ns_per_iter)) => records.push(BenchRecord {
                name,
                mean_ns_per_iter,
            }),
            (None, _) => return Err(format!("record {i}: missing string field `name`")),
            (Some(n), None) => {
                return Err(format!(
                    "record `{n}`: missing numeric field `mean_ns_per_iter`"
                ))
            }
        }
    }
    Ok(records)
}

/// Joins two reports by benchmark name and classifies each shared record
/// by its relative mean change against `threshold_pct` (e.g. `25.0`
/// allows ±25% drift before a record counts as changed). Entries come
/// back name-sorted; a non-finite or non-positive old mean makes the
/// pair `unchanged` with a change of `0%` (no meaningful ratio exists).
pub fn diff(old: &[BenchRecord], new: &[BenchRecord], threshold_pct: f64) -> BenchDiff {
    let old_by_name: BTreeMap<&str, f64> = old
        .iter()
        .map(|r| (r.name.as_str(), r.mean_ns_per_iter))
        .collect();
    let new_by_name: BTreeMap<&str, f64> = new
        .iter()
        .map(|r| (r.name.as_str(), r.mean_ns_per_iter))
        .collect();
    let mut out = BenchDiff::default();
    for (&name, &old_ns) in &old_by_name {
        let Some(&new_ns) = new_by_name.get(name) else {
            out.missing.push(name.to_owned());
            continue;
        };
        let change_pct = if old_ns.is_finite() && old_ns > 0.0 && new_ns.is_finite() {
            (new_ns - old_ns) / old_ns * 100.0
        } else {
            0.0
        };
        let entry = DiffEntry {
            name: name.to_owned(),
            old_ns,
            new_ns,
            change_pct,
        };
        if change_pct > threshold_pct {
            out.regressions.push(entry);
        } else if change_pct < -threshold_pct {
            out.improvements.push(entry);
        } else {
            out.unchanged.push(entry);
        }
    }
    for &name in new_by_name.keys() {
        if !old_by_name.contains_key(name) {
            out.added.push(name.to_owned());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"[
        {"name": "a/fast", "mean_ns_per_iter": 100.0, "samples": 10, "threads": 1},
        {"name": "a/slow", "mean_ns_per_iter": 1000.0, "samples": 10, "threads": 1},
        {"name": "a/gone", "mean_ns_per_iter": 5.0, "samples": 10, "threads": 1}
    ]"#;

    #[test]
    fn parses_the_report_format() {
        let records = parse_report(OLD).expect("parse");
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].name, "a/fast");
        assert_eq!(records[0].mean_ns_per_iter, 100.0);
    }

    #[test]
    fn rejects_malformed_reports() {
        assert!(parse_report("{}").is_err());
        assert!(parse_report("[{\"name\": \"x\"}]").is_err());
        assert!(parse_report("[{\"mean_ns_per_iter\": 1.0}]").is_err());
        assert!(parse_report("[] trailing").is_err());
        assert!(parse_report("[{\"name\": \"x\", \"mean_ns_per_iter\": \"bad\"}]").is_err());
    }

    #[test]
    fn classifies_regressions_improvements_and_membership() {
        let old = parse_report(OLD).expect("old");
        let new = parse_report(
            r#"[
                {"name": "a/fast", "mean_ns_per_iter": 200.0},
                {"name": "a/slow", "mean_ns_per_iter": 400.0},
                {"name": "a/new", "mean_ns_per_iter": 7.0}
            ]"#,
        )
        .expect("new");
        let d = diff(&old, &new, 25.0);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].name, "a/fast");
        assert!((d.regressions[0].change_pct - 100.0).abs() < 1e-9);
        assert_eq!(d.improvements.len(), 1);
        assert_eq!(d.improvements[0].name, "a/slow");
        assert_eq!(d.missing, vec!["a/gone".to_owned()]);
        assert_eq!(d.added, vec!["a/new".to_owned()]);
        assert!(d.unchanged.is_empty());
    }

    #[test]
    fn drift_inside_threshold_is_unchanged() {
        let old = [BenchRecord {
            name: "x".to_owned(),
            mean_ns_per_iter: 100.0,
        }];
        let new = [BenchRecord {
            name: "x".to_owned(),
            mean_ns_per_iter: 120.0,
        }];
        let d = diff(&old, &new, 25.0);
        assert!(d.regressions.is_empty() && d.improvements.is_empty());
        assert_eq!(d.unchanged.len(), 1);
    }

    #[test]
    fn degenerate_old_mean_never_panics_or_regresses() {
        let old = [BenchRecord {
            name: "x".to_owned(),
            mean_ns_per_iter: 0.0,
        }];
        let new = [BenchRecord {
            name: "x".to_owned(),
            mean_ns_per_iter: 50.0,
        }];
        let d = diff(&old, &new, 25.0);
        assert_eq!(d.unchanged.len(), 1);
        assert_eq!(d.unchanged[0].change_pct, 0.0);
    }
}
