//! Lint engine: walks the workspace's first-party source trees, lexes
//! every file once ([`crate::lexer`]), and runs all rule passes over the
//! shared token stream.
//!
//! These complement `clippy` (configured through `[workspace.lints]` in
//! the root manifest) with policies clippy cannot express for this
//! codebase. Detection here rides on sub-dB per-subcarrier RSS changes
//! and every scientific result is pinned by bit-identity tests, so the
//! rules target the failure modes that silently flip presence verdicts:
//! panics, NaN-swallowing ordering, precision-losing casts, dB/linear
//! unit confusion, ambient nondeterminism, lock-order drift, and metric
//! namespace rot. See [`crate::report::Rule`] for the full rule set and
//! the per-family modules ([`crate::rules`], [`crate::determinism`],
//! [`crate::concurrency`], [`crate::metrics`]) for the policies.
//!
//! Library code means files under a crate's `src/` tree minus binary
//! entry points (`src/bin/`, `main.rs`) and `#[cfg(test)]` modules;
//! integration tests, benches and examples are never walked, and
//! third-party stand-ins under `vendor/` are not visited.
//!
//! ## Escape hatch
//!
//! A violation is suppressed by an annotation on the same line or the
//! line above, carrying the rule name and a non-empty justification:
//!
//! ```text
//! // lint: allow(no-panic) — mutex poisoning is unrecoverable here
//! ```

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::concurrency::{self, Manifest};
use crate::determinism;
use crate::lexer::SourceFile;
use crate::metrics::{self, MetricUse, Registry};
use crate::report::{self, Rule, Violation};
use crate::rules::{self, FileCtx};

/// Workspace-root file declaring lock acquisition order and channels.
pub const LOCK_MANIFEST: &str = "LOCK_ORDER.txt";
/// Workspace-root file registering every metric name and kind.
pub const METRIC_REGISTRY: &str = "OBS_registry.txt";

/// Lints one file's source text against every per-file pass, appending
/// this file's metric uses to `uses` for the workspace-level registry
/// reconciliation. Pure function of its inputs, so unit and fixture
/// tests can drive it without touching the filesystem.
#[must_use]
pub fn lint_source(
    rel: &Path,
    source: &str,
    ctx: FileCtx<'_>,
    manifest: Option<&Manifest>,
    uses: &mut Vec<MetricUse>,
) -> Vec<Violation> {
    let file = SourceFile::lex(source);
    let mut out = Vec::new();
    // `claimed` carries token indices already reported by a more
    // specific rule (nan-ordering's terminal unwrap, lock-unwrap's
    // unwrap/expect) so no-panic does not double-report them — the
    // concurrency pass therefore runs before the legacy rules.
    let mut claimed: BTreeSet<usize> = BTreeSet::new();
    concurrency::check(&file, rel, ctx, manifest, &mut claimed, &mut out);
    rules::check(&file, rel, ctx, &mut claimed, &mut out);
    determinism::check(&file, rel, ctx, &mut out);
    metrics::collect(&file, rel, ctx, uses, &mut out);
    out
}

/// Walks the workspace and lints every first-party file, then runs the
/// workspace-level passes (metric registry reconciliation). Findings
/// come back in stable (file, line, col, rule) order.
///
/// # Errors
/// Propagates I/O failures from directory walking or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    if !root.is_dir() {
        // A missing root would otherwise fall through every "tree is
        // absent, skip it" branch below and report a hollow "clean".
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("workspace root `{}` is not a directory", root.display()),
        ));
    }
    let mut violations = Vec::new();
    let manifest = load_lock_manifest(root, &mut violations)?;
    let registry = load_metric_registry(root, &mut violations)?;
    let mut uses: Vec<MetricUse> = Vec::new();

    // Umbrella crate.
    lint_src_tree(
        root,
        &root.join("src"),
        "workspace",
        manifest.as_ref(),
        &mut uses,
        &mut violations,
    )?;

    // Member crates (a root without a `crates/` tree is fine — e.g. a
    // single-crate fixture workspace).
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let name = dir
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_owned();
            lint_src_tree(
                root,
                &dir.join("src"),
                &name,
                manifest.as_ref(),
                &mut uses,
                &mut violations,
            )?;
        }
    }

    metrics::check_registry(
        &uses,
        registry.as_ref(),
        Path::new(METRIC_REGISTRY),
        &mut violations,
    );
    report::sort(&mut violations);
    Ok(violations)
}

/// Reads and parses `LOCK_ORDER.txt`; `None` when absent. Parse errors
/// become `lock-order` findings anchored at the manifest file.
fn load_lock_manifest(root: &Path, out: &mut Vec<Violation>) -> io::Result<Option<Manifest>> {
    let path = root.join(LOCK_MANIFEST);
    if !path.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(&path)?;
    let (manifest, errors) = Manifest::parse(&text);
    for (line, message) in errors {
        out.push(Violation {
            file: PathBuf::from(LOCK_MANIFEST),
            line,
            col: 0,
            rule: Rule::LockOrder,
            message,
        });
    }
    Ok(Some(manifest))
}

/// Reads and parses `OBS_registry.txt`; `None` when absent. Parse
/// errors become `metric-registry` findings anchored at the registry.
fn load_metric_registry(root: &Path, out: &mut Vec<Violation>) -> io::Result<Option<Registry>> {
    let path = root.join(METRIC_REGISTRY);
    if !path.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(&path)?;
    let (registry, errors) = Registry::parse(&text);
    for (line, message) in errors {
        out.push(Violation {
            file: PathBuf::from(METRIC_REGISTRY),
            line,
            col: 0,
            rule: Rule::MetricRegistry,
            message,
        });
    }
    Ok(Some(registry))
}

fn lint_src_tree(
    root: &Path,
    src: &Path,
    crate_name: &str,
    manifest: Option<&Manifest>,
    uses: &mut Vec<MetricUse>,
    out: &mut Vec<Violation>,
) -> io::Result<()> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    collect_rs_files(src, &mut files)?;
    files.sort();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let source = fs::read_to_string(&file)?;
        let file_name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let in_bin_dir = file.components().any(|c| c.as_os_str() == "bin");
        let ctx = FileCtx {
            crate_name,
            is_library: !in_bin_dir && file_name != "main.rs",
            is_crate_root: matches!(file_name, "lib.rs" | "main.rs") && !in_bin_dir,
        };
        out.extend(lint_source(&rel, &source, ctx, manifest, uses));
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::lint_source;
    use crate::concurrency::Manifest;
    use crate::report::Rule;
    use crate::rules::FileCtx;
    use std::path::Path;

    fn lib_ctx(crate_name: &'static str) -> FileCtx<'static> {
        FileCtx {
            crate_name,
            is_library: true,
            is_crate_root: false,
        }
    }

    #[test]
    fn all_families_run_from_one_lex() {
        let (manifest, errs) = Manifest::parse("lock par.state\n");
        assert!(errs.is_empty());
        let src = "fn f(&self) {\n\
                   \x20   let g = self.state.lock().unwrap();\n\
                   \x20   let t = Instant::now();\n\
                   \x20   counter!(\"badName\");\n\
                   \x20   drop((g, t));\n\
                   }\n";
        let mut uses = Vec::new();
        let v = lint_source(
            Path::new("x.rs"),
            src,
            lib_ctx("par"),
            Some(&manifest),
            &mut uses,
        );
        let rules: Vec<Rule> = v.iter().map(|v| v.rule).collect();
        assert!(rules.contains(&Rule::LockUnwrap), "{v:?}");
        assert!(rules.contains(&Rule::DetWallClock), "{v:?}");
        assert!(rules.contains(&Rule::MetricName), "{v:?}");
        // lock-unwrap claimed the unwrap token: no-panic stays silent.
        assert!(!rules.contains(&Rule::NoPanic), "{v:?}");
        assert!(
            uses.is_empty(),
            "malformed names are not registry candidates"
        );
    }

    #[test]
    fn clean_file_reports_nothing_and_collects_uses() {
        let (manifest, errs) = Manifest::parse("lock par.state\nchannel par.work\n");
        assert!(errs.is_empty());
        let src = "fn f(&self) {\n\
                   \x20   let g = self.state.lock().unwrap_or_else(PoisonError::into_inner);\n\
                   \x20   // Backpressure: bounded queue, push blocks when full; on\n\
                   \x20   // disconnect the pop side drains and returns None.\n\
                   \x20   self.work.push(1);\n\
                   \x20   counter!(\"par.jobs_total\");\n\
                   \x20   drop(g);\n\
                   }\n";
        let mut uses = Vec::new();
        let v = lint_source(
            Path::new("x.rs"),
            src,
            lib_ctx("par"),
            Some(&manifest),
            &mut uses,
        );
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].name, "par.jobs_total");
    }
}
