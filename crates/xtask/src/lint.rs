//! Repo-specific lint rules enforced by `cargo xtask lint`.
//!
//! These complement `clippy` (configured through `[workspace.lints]` in
//! the root manifest) with policies clippy cannot express for this
//! codebase. Detection here rides on sub-dB per-subcarrier RSS changes,
//! so the rules target the failure modes that silently flip presence
//! verdicts: panics on unexpected input, NaN-swallowing float ordering,
//! precision-losing casts inside numeric kernels, and unit confusion
//! between dB and linear power.
//!
//! ## Rules
//!
//! | name | scope | policy |
//! |---|---|---|
//! | `no-panic` | library code | no `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!` |
//! | `nan-ordering` | all first-party code | no `partial_cmp(..).unwrap()` / `unwrap_or(Ordering::Equal)`; use `total_cmp` |
//! | `lossy-cast` | numeric kernels (`rfmath`, `music`, `propagation`) | no undocumented narrowing / float→int `as` casts |
//! | `crate-root-attrs` | crate roots | must carry `#![forbid(unsafe_code)]` and `#![warn(missing_docs)]` |
//! | `db-linear` | all first-party code | no `*`/`/` arithmetic mixing `_db`/`_dbm` identifiers with linear-power identifiers |
//! | `no-raw-stderr` | library code | no `println!`/`eprintln!` (and `print!`/`eprint!`); diagnostics flow through `mpdf-obs` |
//!
//! Library code means files under a crate's `src/` tree minus binary
//! entry points (`src/bin/`, `main.rs`) and `#[cfg(test)]` modules;
//! integration tests, benches and examples are never walked.
//!
//! ## Escape hatch
//!
//! A violation is suppressed by an annotation on the same line or the
//! line above, carrying the rule name and a non-empty justification:
//!
//! ```text
//! // lint: allow(no-panic) — mutex poisoning is unrecoverable here
//! ```

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::scan::{scan, ScannedLine};

/// Crates whose `as` casts are held to the `lossy-cast` rule.
const KERNEL_CRATES: &[&str] = &["rfmath", "music", "propagation"];

/// The enforced rule set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// No panicking constructs in library code.
    NoPanic,
    /// No NaN-unsafe float ordering.
    NanOrdering,
    /// No undocumented lossy `as` casts in numeric kernels.
    LossyCast,
    /// Crate roots must forbid `unsafe_code` and warn on `missing_docs`.
    CrateRootAttrs,
    /// No `*`/`/` arithmetic mixing dB and linear-power identifiers.
    DbLinear,
    /// No raw stdout/stderr printing in library code — diagnostics go
    /// through `mpdf-obs` so binaries keep exclusive control of their
    /// streams (the repro harness guarantees byte-stable stdout).
    NoRawStderr,
}

impl Rule {
    /// All rules, in reporting order.
    #[must_use]
    pub const fn all() -> &'static [Rule] {
        &[
            Rule::NoPanic,
            Rule::NanOrdering,
            Rule::LossyCast,
            Rule::CrateRootAttrs,
            Rule::DbLinear,
            Rule::NoRawStderr,
        ]
    }

    /// Stable kebab-case name used in reports and allow annotations.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NanOrdering => "nan-ordering",
            Rule::LossyCast => "lossy-cast",
            Rule::CrateRootAttrs => "crate-root-attrs",
            Rule::DbLinear => "db-linear",
            Rule::NoRawStderr => "no-raw-stderr",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// How a file is classified before rules run.
#[derive(Debug, Clone, Copy)]
pub struct FileContext<'a> {
    /// Crate directory name (`rfmath`, `core`, …) or `"workspace"` for
    /// the umbrella crate.
    pub crate_name: &'a str,
    /// Library code (rules like `no-panic` apply) vs binary entry point.
    pub is_library: bool,
    /// Whether this file is a crate root (`lib.rs` / `main.rs`).
    pub is_crate_root: bool,
}

/// Lints one file's source text. Pure function of its inputs, so unit
/// and fixture tests can drive it without touching the filesystem.
#[must_use]
pub fn lint_source(rel_path: &Path, source: &str, ctx: FileContext<'_>) -> Vec<Violation> {
    let lines = scan(source);
    let mut out = Vec::new();

    if ctx.is_crate_root {
        check_crate_root_attrs(rel_path, source, &lines, &mut out);
    }

    let kernel = KERNEL_CRATES.contains(&ctx.crate_name);
    for (idx, line) in lines.iter().enumerate() {
        if line.in_cfg_test {
            continue;
        }
        let allow = |rule: Rule| allowed(rule, idx, &lines);
        // NaN-unsafe comparators often split `.partial_cmp(..)` and
        // `.unwrap()` across rustfmt-wrapped lines; match on a small
        // forward window anchored at the `partial_cmp` line.
        let window: String = lines[idx..(idx + 3).min(lines.len())]
            .iter()
            .map(|l| l.code.as_str())
            .collect::<Vec<_>>()
            .join(" ");
        let nan_hit = check_nan_ordering(rel_path, line, &window, &mut out, &allow);
        if ctx.is_library && !nan_hit {
            check_no_panic(rel_path, line, &mut out, &allow);
        }
        if ctx.is_library {
            check_no_raw_stderr(rel_path, line, &mut out, &allow);
        }
        if kernel {
            check_lossy_cast(rel_path, line, &mut out, &allow);
        }
        check_db_linear(rel_path, line, &mut out, &allow);
    }
    out
}

/// Checks whether `rule` is suppressed by a `lint: allow(...)` annotation
/// with a justification on this or the preceding line.
fn allowed(rule: Rule, idx: usize, lines: &[ScannedLine]) -> bool {
    let here = lines.get(idx).map(|l| l.comment.as_str());
    let above = idx
        .checked_sub(1)
        .and_then(|p| lines.get(p))
        .map(|l| l.comment.as_str());
    [here, above]
        .into_iter()
        .flatten()
        .any(|comment| allow_matches(comment, rule))
}

fn allow_matches(comment: &str, rule: Rule) -> bool {
    let Some(pos) = comment.find("lint: allow(") else {
        return false;
    };
    let rest = &comment[pos + "lint: allow(".len()..];
    let Some(close) = rest.find(')') else {
        return false;
    };
    let names = &rest[..close];
    let reason = rest[close + 1..]
        .trim_matches(|c: char| c.is_whitespace() || matches!(c, '—' | '-' | '–' | ':' | ','));
    names.split(',').any(|n| n.trim() == rule.name()) && !reason.is_empty()
}

fn check_crate_root_attrs(
    rel_path: &Path,
    source: &str,
    lines: &[ScannedLine],
    out: &mut Vec<Violation>,
) {
    let header_allows = lines
        .iter()
        .take(20)
        .any(|l| allow_matches(&l.comment, Rule::CrateRootAttrs));
    if header_allows {
        return;
    }
    for attr in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
        if !source.contains(attr) {
            out.push(Violation {
                file: rel_path.to_path_buf(),
                line: 1,
                rule: Rule::CrateRootAttrs,
                message: format!("crate root is missing `{attr}`"),
            });
        }
    }
}

fn check_no_panic<F: Fn(Rule) -> bool>(
    rel_path: &Path,
    line: &ScannedLine,
    out: &mut Vec<Violation>,
    allow: &F,
) {
    const PATTERNS: &[(&str, &str)] = &[
        (".unwrap()", "use `?`, a `Result` return, or a total method"),
        (".expect(", "propagate a typed error instead of panicking"),
        ("panic!", "return an error variant instead of panicking"),
        ("todo!", "library code must not ship unfinished paths"),
        (
            "unimplemented!",
            "library code must not ship unfinished paths",
        ),
    ];
    for (pat, fix) in PATTERNS {
        if line.code.contains(pat) {
            if allow(Rule::NoPanic) {
                return;
            }
            out.push(Violation {
                file: rel_path.to_path_buf(),
                line: line.number,
                rule: Rule::NoPanic,
                message: format!("`{}` in library code — {fix}", pat.trim_start_matches('.')),
            });
            return;
        }
    }
}

/// Print macros banned from library code. Ordered longest-first so the
/// report names the macro actually written; the identifier-boundary
/// check below keeps `println!` from also matching inside `eprintln!`.
const PRINT_MACROS: &[&str] = &["eprintln!", "eprint!", "println!", "print!"];

fn check_no_raw_stderr<F: Fn(Rule) -> bool>(
    rel_path: &Path,
    line: &ScannedLine,
    out: &mut Vec<Violation>,
    allow: &F,
) {
    for pat in PRINT_MACROS {
        let code = &line.code;
        let mut from = 0usize;
        while let Some(rel) = code[from..].find(pat) {
            let pos = from + rel;
            from = pos + pat.len();
            let prev = code[..pos].chars().next_back();
            if prev.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                continue;
            }
            if allow(Rule::NoRawStderr) {
                return;
            }
            out.push(Violation {
                file: rel_path.to_path_buf(),
                line: line.number,
                rule: Rule::NoRawStderr,
                message: format!(
                    "`{pat}` in library code — binaries own the process streams; \
                     emit an `mpdf-obs` trace event/metric or return the text to \
                     the caller"
                ),
            });
            return;
        }
    }
}

fn check_nan_ordering<F: Fn(Rule) -> bool>(
    rel_path: &Path,
    line: &ScannedLine,
    window: &str,
    out: &mut Vec<Violation>,
    allow: &F,
) -> bool {
    if !line.code.contains("partial_cmp") {
        return false;
    }
    let unwrap_after = window
        .find("partial_cmp")
        .is_some_and(|pos| window[pos..].contains(".unwrap()"));
    let equal_fallback = window.contains("unwrap_or(") && window.contains("Ordering::Equal)");
    if !(unwrap_after || equal_fallback) {
        return false;
    }
    if !allow(Rule::NanOrdering) {
        out.push(Violation {
            file: rel_path.to_path_buf(),
            line: line.number,
            rule: Rule::NanOrdering,
            message: "NaN-unsafe float ordering — use `f64::total_cmp` \
                      (a NaN here silently reorders or panics the sort)"
                .to_owned(),
        });
    }
    true
}

/// Integer cast targets that always narrow from the `f64`-dominated
/// kernel arithmetic.
const NARROWING_TARGETS: &[&str] = &["f32", "i8", "i16", "i32", "u8", "u16", "u32"];
/// Wide integer targets: lossy only when the source is a float
/// expression, which we detect via rounding-method markers.
const WIDE_INT_TARGETS: &[&str] = &["i64", "u64", "i128", "u128", "isize", "usize"];
const FLOAT_MARKERS: &[&str] = &[".floor()", ".ceil()", ".round()", ".trunc()"];

fn check_lossy_cast<F: Fn(Rule) -> bool>(
    rel_path: &Path,
    line: &ScannedLine,
    out: &mut Vec<Violation>,
    allow: &F,
) {
    let code = &line.code;
    let mut search_from = 0usize;
    while let Some(rel) = code[search_from..].find(" as ") {
        let pos = search_from + rel;
        search_from = pos + 4;
        let target: String = code[pos + 4..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        let before = &code[..pos];
        let narrowing = NARROWING_TARGETS.contains(&target.as_str());
        let float_to_int = WIDE_INT_TARGETS.contains(&target.as_str())
            && FLOAT_MARKERS.iter().any(|m| before.ends_with(m));
        if !(narrowing || float_to_int) {
            continue;
        }
        if allow(Rule::LossyCast) {
            return;
        }
        out.push(Violation {
            file: rel_path.to_path_buf(),
            line: line.number,
            rule: Rule::LossyCast,
            message: format!(
                "lossy `as {target}` cast in a numeric kernel — use a total \
                 conversion (`from`/`try_from`) or annotate why truncation is safe"
            ),
        });
        return;
    }
}

/// Identifier suffixes treated as logarithmic quantities.
const DB_SUFFIXES: &[&str] = &["_db", "_dbm"];
/// Identifier suffixes treated as linear power/amplitude quantities.
const LINEAR_SUFFIXES: &[&str] = &[
    "_mw",
    "_watts",
    "_lin",
    "_linear",
    "_power",
    "_pow",
    "_amp",
    "_amplitude",
    "_mag",
    "_magnitude",
];

fn has_suffix(ident: &str, suffixes: &[&str]) -> bool {
    let lower = ident.to_ascii_lowercase();
    suffixes.iter().any(|s| lower.ends_with(s))
}

fn check_db_linear<F: Fn(Rule) -> bool>(
    rel_path: &Path,
    line: &ScannedLine,
    out: &mut Vec<Violation>,
    allow: &F,
) {
    let tokens = tokenize(&line.code);
    for (i, tok) in tokens.iter().enumerate() {
        if !(tok == "*" || tok == "/") {
            continue;
        }
        let Some(lhs) = i.checked_sub(1).and_then(|p| tokens.get(p)) else {
            continue;
        };
        let Some(rhs) = tokens.get(i + 1) else {
            continue;
        };
        let pair_mixes = (has_suffix(lhs, DB_SUFFIXES) && has_suffix(rhs, LINEAR_SUFFIXES))
            || (has_suffix(lhs, LINEAR_SUFFIXES) && has_suffix(rhs, DB_SUFFIXES));
        if pair_mixes {
            if allow(Rule::DbLinear) {
                return;
            }
            out.push(Violation {
                file: rel_path.to_path_buf(),
                line: line.number,
                rule: Rule::DbLinear,
                message: format!(
                    "`{lhs} {tok} {rhs}` multiplies/divides a dB quantity with a \
                     linear one — convert with `db_to_linear`/`linear_to_db` first"
                ),
            });
            return;
        }
    }
}

/// Splits code into identifier and single-char operator tokens.
fn tokenize(code: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    for c in code.chars() {
        if c.is_alphanumeric() || c == '_' {
            cur.push(c);
        } else {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            if !c.is_whitespace() {
                tokens.push(c.to_string());
            }
        }
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Walks the workspace's first-party source trees and lints every file.
///
/// Third-party stand-ins under `vendor/` and non-source directories are
/// not visited; integration tests, benches and examples are exempt by
/// construction (only `src/` trees are walked).
///
/// # Errors
/// Propagates I/O failures from directory walking or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Violation>> {
    if !root.is_dir() {
        // A missing root would otherwise fall through every "tree is
        // absent, skip it" branch below and report a hollow "clean".
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("workspace root `{}` is not a directory", root.display()),
        ));
    }
    let mut violations = Vec::new();

    // Umbrella crate.
    lint_src_tree(root, &root.join("src"), "workspace", &mut violations)?;

    // Member crates (a root without a `crates/` tree is fine — e.g. a
    // single-crate fixture workspace).
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(violations);
    }
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_owned();
        lint_src_tree(root, &dir.join("src"), &name, &mut violations)?;
    }
    Ok(violations)
}

fn lint_src_tree(
    root: &Path,
    src: &Path,
    crate_name: &str,
    out: &mut Vec<Violation>,
) -> io::Result<()> {
    if !src.is_dir() {
        return Ok(());
    }
    let mut files = Vec::new();
    collect_rs_files(src, &mut files)?;
    files.sort();
    for file in files {
        let rel = file.strip_prefix(root).unwrap_or(&file).to_path_buf();
        let source = fs::read_to_string(&file)?;
        let file_name = file
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        let in_bin_dir = file.components().any(|c| c.as_os_str() == "bin");
        let ctx = FileContext {
            crate_name,
            is_library: !in_bin_dir && file_name != "main.rs",
            is_crate_root: matches!(file_name, "lib.rs" | "main.rs") && !in_bin_dir,
        };
        out.extend(lint_source(&rel, &source, ctx));
    }
    Ok(())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::{lint_source, FileContext, Rule};
    use std::path::Path;

    fn lib_ctx() -> FileContext<'static> {
        FileContext {
            crate_name: "core",
            is_library: true,
            is_crate_root: false,
        }
    }

    fn kernel_ctx() -> FileContext<'static> {
        FileContext {
            crate_name: "rfmath",
            is_library: true,
            is_crate_root: false,
        }
    }

    fn rules_of(source: &str, ctx: FileContext<'_>) -> Vec<Rule> {
        lint_source(Path::new("x.rs"), source, ctx)
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    // ---- no-panic ----

    #[test]
    fn no_panic_flags_unwrap_expect_panic_todo() {
        for src in [
            "fn f() { x.unwrap(); }\n",
            "fn f() { x.expect(\"boom\"); }\n",
            "fn f() { panic!(\"boom\"); }\n",
            "fn f() { todo!(); }\n",
            "fn f() { unimplemented!(); }\n",
        ] {
            assert_eq!(rules_of(src, lib_ctx()), vec![Rule::NoPanic], "{src}");
        }
    }

    #[test]
    fn no_panic_ignores_unwrap_or_family_and_strings() {
        for src in [
            "fn f() { x.unwrap_or(0); }\n",
            "fn f() { x.unwrap_or_else(|| 0); }\n",
            "fn f() { x.unwrap_or_default(); }\n",
            "fn f() { let s = \".unwrap()\"; drop(s); }\n",
            "// a comment about .unwrap()\nfn f() {}\n",
        ] {
            assert!(rules_of(src, lib_ctx()).is_empty(), "{src}");
        }
    }

    #[test]
    fn no_panic_exempts_cfg_test_and_non_library() {
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); }\n}\n";
        assert!(rules_of(test_mod, lib_ctx()).is_empty());
        let binary = FileContext {
            is_library: false,
            ..lib_ctx()
        };
        assert!(rules_of("fn main() { x.unwrap(); }\n", binary).is_empty());
    }

    #[test]
    fn no_panic_escape_hatch_requires_reason() {
        let with_reason =
            "fn f() { x.unwrap(); // lint: allow(no-panic) — checked two lines up\n}\n";
        assert!(rules_of(with_reason, lib_ctx()).is_empty());
        let above = "// lint: allow(no-panic) — invariant: non-empty\nfn f() { x.unwrap(); }\n";
        assert!(rules_of(above, lib_ctx()).is_empty());
        let bare = "fn f() { x.unwrap(); // lint: allow(no-panic)\n}\n";
        assert_eq!(rules_of(bare, lib_ctx()), vec![Rule::NoPanic]);
        let wrong_rule = "fn f() { x.unwrap(); // lint: allow(lossy-cast) — nope\n}\n";
        assert_eq!(rules_of(wrong_rule, lib_ctx()), vec![Rule::NoPanic]);
    }

    // ---- nan-ordering ----

    #[test]
    fn nan_ordering_flags_partial_cmp_unwrap_and_equal_fallback() {
        let unwrap = "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        assert_eq!(rules_of(unwrap, lib_ctx()), vec![Rule::NanOrdering]);
        let fallback =
            "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal)); }\n";
        assert_eq!(rules_of(fallback, lib_ctx()), vec![Rule::NanOrdering]);
        let qualified =
            "fn f() { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }\n";
        assert_eq!(rules_of(qualified, lib_ctx()), vec![Rule::NanOrdering]);
    }

    #[test]
    fn nan_ordering_accepts_total_cmp_and_handled_partial_cmp() {
        let total = "fn f() { v.sort_by(f64::total_cmp); }\n";
        assert!(rules_of(total, lib_ctx()).is_empty());
        let handled = "fn f() -> Option<Ordering> { a.partial_cmp(&b) }\n";
        assert!(rules_of(handled, lib_ctx()).is_empty());
    }

    // ---- lossy-cast ----

    #[test]
    fn lossy_cast_flags_narrowing_in_kernels() {
        for src in [
            "fn f(x: f64) -> f32 { x as f32 }\n",
            "fn f(x: usize) -> u32 { x as u32 }\n",
            "fn f(x: f64) -> usize { x.floor() as usize }\n",
            "fn f(x: f64) -> u64 { x.round() as u64 }\n",
        ] {
            assert_eq!(rules_of(src, kernel_ctx()), vec![Rule::LossyCast], "{src}");
        }
    }

    #[test]
    fn lossy_cast_accepts_widening_annotated_and_non_kernel() {
        for src in [
            "fn f(i: usize) -> f64 { i as f64 }\n",
            "fn f(i: u32) -> u64 { u64::from(i) }\n",
            "fn f(x: f64) -> usize { x.floor() as usize } // lint: allow(lossy-cast) — bounded by grid len\n",
        ] {
            assert!(rules_of(src, kernel_ctx()).is_empty(), "{src}");
        }
        let non_kernel = "fn f(x: f64) -> f32 { x as f32 }\n";
        assert!(rules_of(non_kernel, lib_ctx()).is_empty());
    }

    // ---- crate-root-attrs ----

    #[test]
    fn crate_root_attrs_requires_both_attributes() {
        let root_ctx = FileContext {
            crate_name: "core",
            is_library: true,
            is_crate_root: true,
        };
        let bare = "//! docs\npub fn f() {}\n";
        let rules = rules_of(bare, root_ctx);
        assert_eq!(rules, vec![Rule::CrateRootAttrs, Rule::CrateRootAttrs]);
        let good = "//! docs\n#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}\n";
        assert!(rules_of(good, root_ctx).is_empty());
        let non_root = "pub fn f() {}\n";
        assert!(rules_of(non_root, lib_ctx()).is_empty());
    }

    // ---- no-raw-stderr ----

    #[test]
    fn no_raw_stderr_flags_print_macros_in_library_code() {
        for src in [
            "fn f() { eprintln!(\"status\"); }\n",
            "fn f() { eprint!(\"status\"); }\n",
            "fn f() { println!(\"{x}\"); }\n",
            "fn f() { print!(\"{x}\"); }\n",
        ] {
            assert_eq!(rules_of(src, lib_ctx()), vec![Rule::NoRawStderr], "{src}");
        }
    }

    #[test]
    fn no_raw_stderr_exempts_bins_tests_strings_and_lookalikes() {
        let binary = FileContext {
            is_library: false,
            ..lib_ctx()
        };
        assert!(rules_of("fn main() { println!(\"ok\"); }\n", binary).is_empty());
        let test_mod = "#[cfg(test)]\nmod tests {\n fn t() { eprintln!(\"dbg\"); }\n}\n";
        assert!(rules_of(test_mod, lib_ctx()).is_empty());
        for src in [
            "fn f() { let s = \"println!\"; drop(s); }\n",
            "// println! is banned here\nfn f() {}\n",
            "fn f(w: &mut W) { writeln!(w, \"x\").ok(); }\n",
            "my_println!(\"macro with a suffix match\");\n",
        ] {
            assert!(rules_of(src, lib_ctx()).is_empty(), "{src}");
        }
    }

    #[test]
    fn no_raw_stderr_escape_hatch_requires_reason() {
        let with_reason =
            "fn f() { eprintln!(\"x\"); // lint: allow(no-raw-stderr) — pre-obs bootstrap path\n}\n";
        assert!(rules_of(with_reason, lib_ctx()).is_empty());
        let bare = "fn f() { eprintln!(\"x\"); // lint: allow(no-raw-stderr)\n}\n";
        assert_eq!(rules_of(bare, lib_ctx()), vec![Rule::NoRawStderr]);
    }

    #[test]
    fn no_raw_stderr_names_the_longest_matching_macro() {
        let v = lint_source(
            Path::new("x.rs"),
            "fn f() { eprintln!(\"x\"); }\n",
            lib_ctx(),
        );
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`eprintln!`"), "{}", v[0].message);
    }

    // ---- db-linear ----

    #[test]
    fn db_linear_flags_mixed_arithmetic() {
        for src in [
            "fn f() { let x = gain_db * noise_power; }\n",
            "fn f() { let x = signal_mw / loss_db; }\n",
            "fn f() { let x = rssi_dbm * amplitude_mag; }\n",
        ] {
            assert_eq!(rules_of(src, lib_ctx()), vec![Rule::DbLinear], "{src}");
        }
    }

    #[test]
    fn db_linear_accepts_scalars_and_same_unit_math() {
        for src in [
            "fn f() { let x = gain_db * 0.5; }\n",
            "fn f() { let x = gain_db - other_db; }\n",
            "fn f() { let x = signal_mw * path_gain_lin; }\n",
            "fn f() { let x = gain_db / 10.0; }\n",
        ] {
            assert!(rules_of(src, lib_ctx()).is_empty(), "{src}");
        }
    }
}
