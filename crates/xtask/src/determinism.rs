//! Determinism taint analysis for result-affecting crates.
//!
//! Every campaign, instrumented run and checkpoint restore in this repo
//! is pinned by a bit-identity equivalence test; those tests only stay
//! green if the code they cover is *structurally* deterministic. This
//! pass bans the ambient-nondeterminism sources that survive code review
//! most often, in the crates whose output feeds the paper's Eq. 12–15
//! scoring:
//!
//! - `det-unordered` — `HashMap`/`HashSet` (and `RandomState` /
//!   `DefaultHasher`): iteration order is randomized per process, so any
//!   iteration, debug-format or fold over one is a silent reproducibility
//!   break. Use `BTreeMap`/`BTreeSet` or sort before iterating.
//! - `det-wall-clock` — `Instant`/`SystemTime`/`UNIX_EPOCH`: wall-clock
//!   reads differ per run.
//! - `det-thread-id` — `thread::current()`/`ThreadId`/
//!   `available_parallelism`: results must not depend on which or how
//!   many threads execute.
//! - `det-unseeded-rng` — `thread_rng`/`from_entropy`/`OsRng`/
//!   `rand::random`: every RNG stream must derive from an explicit seed.
//!
//! Findings are suppressed per-line with `// lint: allow(<rule>) — why`,
//! which is the mechanism for the rare site that is nondeterminism-safe
//! by construction (e.g. a thread-count default whose output is pinned
//! bit-identical by an equivalence test).

use std::path::Path;

use crate::lexer::{SourceFile, TokenKind};
use crate::report::{Rule, Violation};
use crate::rules::{emit, FileCtx};

/// Crates whose code can influence scientific results: everything from
/// raw math to session and fleet supervision, including the parallel layer (job
/// ordering) — but not `obs` (observability is proven byte-neutral by
/// the obs-equivalence test), `eval`'s CLI surface, or `bench`/`xtask`.
pub const RESULT_CRATES: &[&str] = &[
    "rfmath",
    "music",
    "core",
    "propagation",
    "wifi",
    "session",
    "fleet",
    "par",
];

/// Idents that indicate a randomized-order collection.
const UNORDERED_TYPES: &[&str] = &["HashMap", "HashSet", "RandomState", "DefaultHasher"];
/// Idents that read the wall clock.
const WALL_CLOCK_TYPES: &[&str] = &["Instant", "SystemTime", "UNIX_EPOCH"];
/// Idents tying behaviour to thread identity or ambient parallelism.
const THREAD_ID_IDENTS: &[&str] = &["ThreadId", "available_parallelism"];
/// Idents constructing RNGs from ambient entropy.
const UNSEEDED_RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng", "EntropyRng"];

/// Runs the determinism taint pass. No-op outside [`RESULT_CRATES`].
pub fn check(file: &SourceFile, rel: &Path, ctx: FileCtx<'_>, out: &mut Vec<Violation>) {
    if !RESULT_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &file.tokens;
    // One finding per (rule, line): a `use` plus a constructor call on
    // the same line is one defect, not two.
    let mut last: [(Rule, u32); 4] = [
        (Rule::DetUnordered, 0),
        (Rule::DetWallClock, 0),
        (Rule::DetThreadId, 0),
        (Rule::DetUnseededRng, 0),
    ];
    let mut fire = |i: usize, rule: Rule, msg: String, out: &mut Vec<Violation>| {
        let line = toks[i].line;
        if let Some(slot) = last.iter_mut().find(|(r, _)| *r == rule) {
            if slot.1 == line {
                return;
            }
            slot.1 = line;
        }
        emit(file, rel, &toks[i], rule, msg, out);
    };
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokenKind::Ident || file.in_test(t.line) {
            continue;
        }
        let name = t.text.as_str();
        if UNORDERED_TYPES.contains(&name) {
            fire(
                i,
                Rule::DetUnordered,
                format!(
                    "`{name}` in a result-affecting crate — iteration order is \
                     randomized per process; use `BTreeMap`/`BTreeSet` or sort \
                     before iterating"
                ),
                out,
            );
        } else if WALL_CLOCK_TYPES.contains(&name) {
            fire(
                i,
                Rule::DetWallClock,
                format!(
                    "`{name}` in a result-affecting crate — wall-clock reads \
                     differ per run; derive timing from packet/window indices \
                     or move it behind `mpdf-obs`"
                ),
                out,
            );
        } else if THREAD_ID_IDENTS.contains(&name) || is_thread_current(toks, i) {
            let shown = if is_thread_current(toks, i) {
                "thread::current"
            } else {
                name
            };
            fire(
                i,
                Rule::DetThreadId,
                format!(
                    "`{shown}` in a result-affecting crate — results must be \
                     independent of thread identity and ambient parallelism; \
                     plumb an explicit parameter instead"
                ),
                out,
            );
        } else if UNSEEDED_RNG_IDENTS.contains(&name) || is_rand_random(toks, i) {
            let shown = if is_rand_random(toks, i) {
                "rand::random"
            } else {
                name
            };
            fire(
                i,
                Rule::DetUnseededRng,
                format!(
                    "`{shown}` in a result-affecting crate — construct RNGs from \
                     an explicit seed (`seed_from_u64`/`from_seed`) so streams \
                     replay bit-identically"
                ),
                out,
            );
        }
    }
}

/// Matches the `thread::current` path at the `thread` token.
fn is_thread_current(toks: &[crate::lexer::Token], i: usize) -> bool {
    toks[i].is_ident("thread")
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("current"))
}

/// Matches the `rand::random` path at the `rand` token.
fn is_rand_random(toks: &[crate::lexer::Token], i: usize) -> bool {
    toks[i].is_ident("rand")
        && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 3).is_some_and(|t| t.is_ident("random"))
}

#[cfg(test)]
mod tests {
    use super::check;
    use crate::lexer::SourceFile;
    use crate::report::Rule;
    use crate::rules::FileCtx;
    use std::path::Path;

    fn rules_of(source: &str, crate_name: &'static str) -> Vec<Rule> {
        let file = SourceFile::lex(source);
        let mut out = Vec::new();
        let ctx = FileCtx {
            crate_name,
            is_library: true,
            is_crate_root: false,
        };
        check(&file, Path::new("x.rs"), ctx, &mut out);
        out.into_iter().map(|v| v.rule).collect()
    }

    #[test]
    fn unordered_collections_fire_once_per_line() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); drop(m); }\n";
        assert_eq!(
            rules_of(src, "core"),
            vec![Rule::DetUnordered, Rule::DetUnordered],
            "one per line, not one per mention"
        );
    }

    #[test]
    fn wall_clock_thread_id_and_rng_fire() {
        assert_eq!(
            rules_of("fn f() { let t = Instant::now(); drop(t); }\n", "wifi"),
            vec![Rule::DetWallClock]
        );
        assert_eq!(
            rules_of(
                "fn f() { let t = SystemTime::now(); drop(t); }\n",
                "session"
            ),
            vec![Rule::DetWallClock]
        );
        assert_eq!(
            rules_of(
                "fn f() -> u64 { std::thread::current().id().as_u64() }\n",
                "par"
            ),
            vec![Rule::DetThreadId]
        );
        assert_eq!(
            rules_of(
                "fn f() -> usize { std::thread::available_parallelism().map_or(1, |n| n.get()) }\n",
                "par"
            ),
            vec![Rule::DetThreadId]
        );
        assert_eq!(
            rules_of(
                "fn f() { let mut r = rand::thread_rng(); let _x: f64 = r.gen(); }\n",
                "propagation"
            ),
            vec![Rule::DetUnseededRng]
        );
        assert_eq!(
            rules_of("fn f() -> f64 { rand::random() }\n", "rfmath"),
            vec![Rule::DetUnseededRng]
        );
    }

    #[test]
    fn non_result_crates_tests_strings_and_btrees_are_exempt() {
        // obs and eval are outside the taint scope.
        assert!(rules_of("fn f() { let t = Instant::now(); drop(t); }\n", "obs").is_empty());
        assert!(rules_of("use std::collections::HashMap;\n", "eval").is_empty());
        // #[cfg(test)] modules may use whatever they like.
        let test_mod =
            "#[cfg(test)]\nmod tests {\n use std::collections::HashSet;\n fn t() { let s: HashSet<u8> = HashSet::new(); drop(s); }\n}\n";
        assert!(rules_of(test_mod, "core").is_empty());
        // Mentions inside strings or comments never fire.
        assert!(rules_of(
            "// HashMap is banned here\nfn f() { let s = \"Instant::now\"; drop(s); }\n",
            "core"
        )
        .is_empty());
        // Ordered collections and seeded RNGs are the sanctioned tools.
        let clean = "use std::collections::BTreeMap;\nfn f() { let mut r = SmallRng::seed_from_u64(7); let _ = r.next_u64(); }\n";
        assert!(rules_of(clean, "core").is_empty());
    }

    #[test]
    fn escape_hatch_suppresses_with_reason() {
        let src = "fn workers() -> usize {\n    // lint: allow(det-thread-id) — default only; output is thread-count-invariant\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
        assert!(rules_of(src, "par").is_empty());
        let bare = "fn workers() -> usize {\n    // lint: allow(det-thread-id)\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
        assert_eq!(rules_of(bare, "par"), vec![Rule::DetThreadId]);
    }
}
