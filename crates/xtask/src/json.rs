//! Minimal self-contained JSON reader shared by the report-diff tools
//! (`bench-diff`, `obs-diff`). The xtask gate is std-only — it must
//! build offline with no crate registry — so the machine-readable
//! artifacts it consumes (`BENCH_*.json`, `OBS_metrics.json`) are parsed
//! with this tree reader instead of serde. Values the tools don't need
//! (booleans, null) collapse to [`Json::Other`].

/// A parsed JSON value.
pub enum Json {
    /// A number (all JSON numbers read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
    /// `true` / `false` / `null` — present but uninteresting.
    Other,
}

/// Parses one JSON value at the start of `s`, returning it and the
/// unconsumed remainder.
///
/// # Errors
/// A description of the first malformed construct.
pub fn parse_value(s: &str) -> Result<(Json, &str), String> {
    let s = s.trim_start();
    match s.as_bytes().first() {
        Some(b'[') => parse_array(s),
        Some(b'{') => parse_object(s),
        Some(b'"') => {
            let (string, rest) = parse_string(s)?;
            Ok((Json::Str(string), rest))
        }
        Some(b't') => parse_literal(s, "true"),
        Some(b'f') => parse_literal(s, "false"),
        Some(b'n') => parse_literal(s, "null"),
        Some(_) => parse_number(s),
        None => Err("unexpected end of input".to_owned()),
    }
}

/// Parses a whole document: one top-level value with nothing after it.
///
/// # Errors
/// Malformed JSON or trailing data.
pub fn parse_document(text: &str) -> Result<Json, String> {
    let (value, rest) = parse_value(text.trim_start())?;
    if !rest.trim_start().is_empty() {
        return Err("trailing data after top-level JSON value".to_owned());
    }
    Ok(value)
}

fn parse_literal<'a>(s: &'a str, lit: &str) -> Result<(Json, &'a str), String> {
    s.strip_prefix(lit)
        .map(|rest| (Json::Other, rest))
        .ok_or_else(|| format!("invalid literal near `{}`", truncated(s)))
}

fn parse_array(s: &str) -> Result<(Json, &str), String> {
    let mut rest = skip_expected(s, '[')?;
    let mut items = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Ok(after) = skip_expected(rest, ']') {
            return Ok((Json::Arr(items), after));
        }
        if !items.is_empty() {
            rest = skip_expected(rest, ',')?;
        }
        let (value, after) = parse_value(rest)?;
        items.push(value);
        rest = after;
    }
}

fn parse_object(s: &str) -> Result<(Json, &str), String> {
    let mut rest = skip_expected(s, '{')?;
    let mut fields = Vec::new();
    loop {
        rest = rest.trim_start();
        if let Ok(after) = skip_expected(rest, '}') {
            return Ok((Json::Obj(fields), after));
        }
        if !fields.is_empty() {
            rest = skip_expected(rest, ',')?;
        }
        let (key, after) = parse_string(rest.trim_start())?;
        rest = skip_expected(after.trim_start(), ':')?;
        let (value, after) = parse_value(rest)?;
        fields.push((key, value));
        rest = after;
    }
}

/// Parses a leading JSON string literal, returning the unescaped body
/// and the remainder after the closing quote.
///
/// # Errors
/// Unterminated strings or unsupported escapes.
pub fn parse_string(s: &str) -> Result<(String, &str), String> {
    let rest = skip_expected(s, '"')?;
    let mut out = String::new();
    let mut chars = rest.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Ok((out, &rest[i + 1..])),
            '\\' => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, '/')) => out.push('/'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, other)) => {
                    return Err(format!("unsupported string escape `\\{other}`"));
                }
                None => return Err("unterminated string escape".to_owned()),
            },
            _ => out.push(c),
        }
    }
    Err("unterminated string".to_owned())
}

fn parse_number(s: &str) -> Result<(Json, &str), String> {
    let end = s
        .find(|c: char| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
        .unwrap_or(s.len());
    let (num, rest) = s.split_at(end);
    num.parse::<f64>()
        .map(|n| (Json::Num(n), rest))
        .map_err(|_| format!("invalid number near `{}`", truncated(s)))
}

fn skip_expected(s: &str, c: char) -> Result<&str, String> {
    s.trim_start()
        .strip_prefix(c)
        .ok_or_else(|| format!("expected `{c}` near `{}`", truncated(s)))
}

fn truncated(s: &str) -> &str {
    let end = s.char_indices().nth(24).map_or_else(|| s.len(), |(i, _)| i);
    &s[..end]
}
