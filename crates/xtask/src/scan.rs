//! Source preprocessing for the lint engine.
//!
//! The linter is deliberately a line-oriented scanner, not a parser: the
//! rules it enforces are all expressible on code text once string
//! literals and comments are stripped. This module does that stripping
//! with a small state machine that understands line comments, (nested)
//! block comments, regular/raw string literals, char literals and
//! lifetimes, and also tracks which lines fall inside `#[cfg(test)]`
//! modules so panicking assertions in unit tests are not flagged.

/// One source line, split into the parts the rules care about.
#[derive(Debug, Clone)]
pub struct ScannedLine {
    /// Line number, 1-based.
    pub number: usize,
    /// The line with string/char literals blanked and comments removed.
    pub code: String,
    /// Concatenated comment text on the line (line + block comments).
    pub comment: String,
    /// Whether the line sits inside a `#[cfg(test)]` item.
    pub in_cfg_test: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Code,
    Block(u32),
    Str,
    RawStr(u32),
}

/// Splits `source` into [`ScannedLine`]s.
///
/// The scanner is conservative: if it misclassifies an exotic token
/// sequence, the worst case is a spurious lint that can be silenced with
/// an explicit `// lint: allow(...)` annotation.
#[allow(clippy::too_many_lines)]
pub fn scan(source: &str) -> Vec<ScannedLine> {
    let mut out = Vec::new();
    let mut mode = Mode::Code;

    // `#[cfg(test)]` tracking: once armed, the next block start opens an
    // exempt region that lasts until brace depth drops back.
    let mut depth: i64 = 0;
    let mut cfg_test_armed = false;
    let mut cfg_test_until: Option<i64> = None;

    for (idx, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes: Vec<char> = raw.chars().collect();
        let mut i = 0usize;
        let in_test_at_start = cfg_test_until.is_some();

        // Arm before processing so `#[cfg(test)] mod tests {` on a single
        // line opens its region with the brace on the same line.
        if mode == Mode::Code && raw.contains("#[cfg(test)]") {
            cfg_test_armed = true;
        }

        while i < bytes.len() {
            let c = bytes[i];
            let next = bytes.get(i + 1).copied();
            match mode {
                Mode::Block(level) => {
                    if c == '/' && next == Some('*') {
                        mode = Mode::Block(level + 1);
                        i += 2;
                    } else if c == '*' && next == Some('/') {
                        mode = if level == 1 {
                            Mode::Code
                        } else {
                            Mode::Block(level - 1)
                        };
                        i += 2;
                    } else {
                        comment.push(c);
                        i += 1;
                    }
                }
                Mode::Str => {
                    if c == '\\' {
                        i += 2;
                    } else if c == '"' {
                        mode = Mode::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                Mode::RawStr(hashes) => {
                    if c == '"' {
                        let mut n = 0u32;
                        while n < hashes && bytes.get(i + 1 + n as usize) == Some(&'#') {
                            n += 1;
                        }
                        if n == hashes {
                            mode = Mode::Code;
                            code.push('"');
                            i += 1 + hashes as usize;
                            continue;
                        }
                    }
                    i += 1;
                }
                Mode::Code => {
                    if c == '/' && next == Some('/') {
                        comment.push_str(&raw[char_offset(raw, i) + 2..]);
                        break;
                    } else if c == '/' && next == Some('*') {
                        mode = Mode::Block(1);
                        i += 2;
                    } else if c == '"' {
                        code.push('"');
                        mode = Mode::Str;
                        i += 1;
                    } else if c == 'r'
                        && matches!(next, Some('"' | '#'))
                        && !prev_is_ident(&bytes, i)
                    {
                        // Raw string: r"..." or r#"..."#.
                        let mut hashes = 0u32;
                        let mut j = i + 1;
                        while bytes.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if bytes.get(j) == Some(&'"') {
                            code.push('"');
                            mode = Mode::RawStr(hashes);
                            i = j + 1;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else if c == '\'' {
                        // Char literal vs lifetime. A char literal closes
                        // with a quote within a few chars.
                        if let Some(len) = char_literal_len(&bytes, i) {
                            code.push_str("' '");
                            i += len;
                        } else {
                            code.push(c);
                            i += 1;
                        }
                    } else {
                        if c == '{' {
                            depth += 1;
                            if cfg_test_armed {
                                cfg_test_armed = false;
                                cfg_test_until = Some(depth);
                            }
                        } else if c == '}' {
                            if cfg_test_until == Some(depth) {
                                cfg_test_until = None;
                            }
                            depth -= 1;
                        }
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }

        out.push(ScannedLine {
            number: idx + 1,
            code,
            comment,
            in_cfg_test: in_test_at_start || cfg_test_until.is_some(),
        });
    }
    out
}

/// Byte offset of the `i`-th char in `s` (lines are short; linear is fine).
fn char_offset(s: &str, i: usize) -> usize {
    s.char_indices()
        .nth(i)
        .map_or_else(|| s.len(), |(off, _)| off)
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i.checked_sub(1)
        .and_then(|p| bytes.get(p))
        .is_some_and(|c| c.is_alphanumeric() || *c == '_')
}

/// If position `i` (at a `'`) starts a char literal, returns its length.
fn char_literal_len(bytes: &[char], i: usize) -> Option<usize> {
    // 'x', '\n', '\u{...}', '\''.
    let mut j = i + 1;
    if bytes.get(j) == Some(&'\\') {
        j += 2;
        while j < bytes.len() && bytes[j] != '\'' && j - i < 12 {
            j += 1;
        }
        (bytes.get(j) == Some(&'\'')).then(|| j - i + 1)
    } else {
        (bytes.get(j).is_some() && bytes.get(j + 1) == Some(&'\'')).then_some(3)
    }
}

#[cfg(test)]
mod tests {
    use super::scan;

    #[test]
    fn strings_and_comments_are_stripped() {
        let lines = scan("let x = \"a.unwrap()\"; // trailing .unwrap()\n");
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("trailing .unwrap()"));
    }

    #[test]
    fn block_comments_span_lines_and_nest() {
        let src = "a /* one /* two */ still */ b\n/* open\nunwrap()\n*/ c\n";
        let lines = scan(src);
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[2].code.contains("unwrap"));
        assert!(lines[3].code.contains('c'));
    }

    #[test]
    fn raw_strings_are_stripped() {
        let lines = scan("let s = r#\"panic!(\"x\")\"#; let t = 1;\n");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].code.contains("let t = 1"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x }\n");
        assert!(lines[0].code.contains("fn f<'a>"));
    }

    #[test]
    fn char_literals_are_blanked() {
        let lines = scan("let c = '\"'; let d = 2;\n");
        assert!(lines[0].code.contains("let d = 2"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let lines = scan(src);
        assert!(!lines[0].in_cfg_test);
        assert!(lines[3].in_cfg_test, "{lines:?}");
        assert!(!lines[5].in_cfg_test);
    }
}
