//! Rule registry, violation type, and the machine-readable findings
//! report emitted by `cargo xtask lint --json`.

use std::fmt;
use std::path::{Path, PathBuf};

/// The enforced rule set: the six original text-level policies (now
/// ported onto the token stream) plus the three analysis families added
/// for fleet-scale concurrency — determinism taint (`det-*`), the
/// concurrency audit (`lock-*`, `chan-*`), and the metrics/obs contract
/// (`metric-*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// No panicking constructs in library code.
    NoPanic,
    /// No NaN-unsafe float ordering.
    NanOrdering,
    /// No undocumented lossy `as` casts in numeric kernels.
    LossyCast,
    /// Crate roots must forbid `unsafe_code` and warn on `missing_docs`.
    CrateRootAttrs,
    /// No `*`/`/` arithmetic mixing dB and linear-power identifiers.
    DbLinear,
    /// No raw stdout/stderr printing in library code.
    NoRawStderr,
    /// No `HashMap`/`HashSet` (randomized iteration order) in
    /// result-affecting crates.
    DetUnordered,
    /// No wall-clock reads (`Instant::now`, `SystemTime`) in
    /// result-affecting crates.
    DetWallClock,
    /// No thread-identity / ambient-parallelism influence
    /// (`thread::current`, `ThreadId`, `available_parallelism`) in
    /// result-affecting crates.
    DetThreadId,
    /// No unseeded RNG construction (`thread_rng`, `from_entropy`,
    /// `OsRng`, `rand::random`) in result-affecting crates.
    DetUnseededRng,
    /// Every lock in the concurrency-audited crates must be declared in
    /// `LOCK_ORDER.txt` and acquired in manifest order.
    LockOrder,
    /// `.lock()` results must not be `unwrap`ped/`expect`ed in library
    /// code — recover poisoning (`PoisonError::into_inner`) or return a
    /// typed error.
    LockUnwrap,
    /// Channel sends need a documented backpressure/disconnect story.
    ChanDiscipline,
    /// `counter!`/`gauge!`/`stage!` names must be snake-case dotted
    /// paths.
    MetricName,
    /// Metric names must be registered (with the right kind) in
    /// `OBS_registry.txt`, which must hold no stale entries.
    MetricRegistry,
}

impl Rule {
    /// All rules, in reporting order.
    #[must_use]
    pub const fn all() -> &'static [Rule] {
        &[
            Rule::NoPanic,
            Rule::NanOrdering,
            Rule::LossyCast,
            Rule::CrateRootAttrs,
            Rule::DbLinear,
            Rule::NoRawStderr,
            Rule::DetUnordered,
            Rule::DetWallClock,
            Rule::DetThreadId,
            Rule::DetUnseededRng,
            Rule::LockOrder,
            Rule::LockUnwrap,
            Rule::ChanDiscipline,
            Rule::MetricName,
            Rule::MetricRegistry,
        ]
    }

    /// Stable kebab-case name used in reports and allow annotations.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Rule::NoPanic => "no-panic",
            Rule::NanOrdering => "nan-ordering",
            Rule::LossyCast => "lossy-cast",
            Rule::CrateRootAttrs => "crate-root-attrs",
            Rule::DbLinear => "db-linear",
            Rule::NoRawStderr => "no-raw-stderr",
            Rule::DetUnordered => "det-unordered",
            Rule::DetWallClock => "det-wall-clock",
            Rule::DetThreadId => "det-thread-id",
            Rule::DetUnseededRng => "det-unseeded-rng",
            Rule::LockOrder => "lock-order",
            Rule::LockUnwrap => "lock-unwrap",
            Rule::ChanDiscipline => "chan-discipline",
            Rule::MetricName => "metric-name",
            Rule::MetricRegistry => "metric-registry",
        }
    }

    /// One-line policy statement, shown by `cargo xtask rules`.
    #[must_use]
    pub const fn policy(self) -> &'static str {
        match self {
            Rule::NoPanic => "library code: no unwrap()/expect()/panic!/todo!/unimplemented!",
            Rule::NanOrdering => "no partial_cmp().unwrap() or Ordering::Equal fallback; total_cmp",
            Rule::LossyCast => "numeric kernels: no undocumented narrowing/float->int `as` casts",
            Rule::CrateRootAttrs => "crate roots carry forbid(unsafe_code) + warn(missing_docs)",
            Rule::DbLinear => "no *// arithmetic mixing dB identifiers with linear-power ones",
            Rule::NoRawStderr => "library code: no print!/println!/eprint!/eprintln!",
            Rule::DetUnordered => "result crates: no HashMap/HashSet; BTree* or sorted iteration",
            Rule::DetWallClock => "result crates: no Instant::now/SystemTime wall-clock reads",
            Rule::DetThreadId => "result crates: no thread::current/ThreadId/available_parallelism",
            Rule::DetUnseededRng => "result crates: RNGs are built from explicit seeds only",
            Rule::LockOrder => {
                "audited crates: locks declared in LOCK_ORDER.txt, acquired in order"
            }
            Rule::LockUnwrap => "library code: recover lock poisoning, never unwrap()/expect() it",
            Rule::ChanDiscipline => "channel sends document their backpressure/disconnect story",
            Rule::MetricName => "metric names are snake-case dotted paths (domain.metric_name)",
            Rule::MetricRegistry => "metric names registered in OBS_registry.txt with their kind",
        }
    }
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// File the violation is in, relative to the workspace root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column of the offending token (0 for file-level findings).
    pub col: u32,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Sorts violations into stable report order: file, line, column, rule.
pub fn sort(violations: &mut [Violation]) {
    violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
}

/// Renders the findings as the machine-readable JSON report CI consumes.
///
/// Schema (version 1):
///
/// ```json
/// {
///   "version": 1,
///   "rules": ["no-panic", "..."],
///   "total": 2,
///   "counts": {"no-panic": 1, "det-unordered": 1},
///   "findings": [
///     {"file": "crates/x/src/lib.rs", "line": 3, "col": 7,
///      "rule": "no-panic", "message": "..."}
///   ]
/// }
/// ```
///
/// Ordering is deterministic (findings pre-sorted, counts in rule
/// order), so the report is byte-stable for a given tree.
#[must_use]
pub fn to_json(violations: &[Violation]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 1,\n  \"rules\": [");
    for (i, rule) in Rule::all().iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push('"');
        s.push_str(rule.name());
        s.push('"');
    }
    s.push_str("],\n");
    let total = violations.len();
    s.push_str(&format!("  \"total\": {total},\n"));
    s.push_str("  \"counts\": {");
    let mut first = true;
    for rule in Rule::all() {
        let n = violations.iter().filter(|v| v.rule == *rule).count();
        if n == 0 {
            continue;
        }
        if !first {
            s.push_str(", ");
        }
        first = false;
        s.push_str(&format!("\"{}\": {n}", rule.name()));
    }
    s.push_str("},\n  \"findings\": [");
    for (i, v) in violations.iter().enumerate() {
        s.push_str(if i == 0 { "\n" } else { ",\n" });
        s.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": {}}}",
            json_string(&path_str(&v.file)),
            v.line,
            v.col,
            v.rule.name(),
            json_string(&v.message)
        ));
    }
    if !violations.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("]\n}\n");
    s
}

/// Renders a path with forward slashes so reports are OS-independent.
fn path_str(p: &Path) -> String {
    p.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::{sort, to_json, Rule, Violation};
    use std::path::PathBuf;

    fn v(file: &str, line: u32, rule: Rule) -> Violation {
        Violation {
            file: PathBuf::from(file),
            line,
            col: 1,
            rule,
            message: "msg with \"quotes\" and \\slash".to_owned(),
        }
    }

    #[test]
    fn json_report_is_stable_and_escaped() {
        let mut vs = vec![
            v("b.rs", 2, Rule::NoPanic),
            v("a.rs", 9, Rule::DetUnordered),
            v("a.rs", 3, Rule::NoPanic),
        ];
        sort(&mut vs);
        let json = to_json(&vs);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"total\": 3"));
        assert!(json.contains("\"no-panic\": 2"));
        assert!(json.contains("\\\"quotes\\\""));
        let a3 = json.find("a.rs\", \"line\": 3").unwrap_or(usize::MAX);
        let a9 = json.find("a.rs\", \"line\": 9").unwrap_or(usize::MAX);
        assert!(a3 < a9, "{json}");
    }

    #[test]
    fn empty_report_has_empty_findings_array() {
        let json = to_json(&[]);
        assert!(json.contains("\"total\": 0"));
        assert!(json.contains("\"findings\": []"));
    }

    #[test]
    fn every_rule_has_name_and_policy() {
        assert_eq!(Rule::all().len(), 15);
        for rule in Rule::all() {
            assert!(!rule.name().is_empty());
            assert!(!rule.policy().is_empty());
        }
    }
}
