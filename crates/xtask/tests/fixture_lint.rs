//! End-to-end fixture tests for `cargo xtask lint`: run the real binary
//! against seeded fixture workspaces under `tests/fixtures/` and assert
//! every deliberately planted violation is detected (and nothing else).
//!
//! The seeded fixture carries at least one true positive, one annotated
//! escape hatch and one false-positive guard per rule family, plus its
//! own `LOCK_ORDER.txt` / `OBS_registry.txt` manifests; the expectation
//! list below is the port-parity proof that the token-stream engine
//! still catches everything the original line-oriented scanner did.

use std::path::Path;
use std::process::{Command, Output};

fn fixture_root(fixture: &str) -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture)
}

fn run_lint(fixture: &str, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(fixture_root(fixture))
        .args(extra)
        .output()
        .expect("xtask binary runs")
}

#[test]
fn seeded_violations_are_each_detected() {
    let out = run_lint("seeded", &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(1),
        "seeded fixture must fail the gate with the findings exit code:\n{stdout}"
    );

    // One expectation per planted violation: `file:line: [rule]`. The
    // first six files repeat the original scanner's seeds (port
    // parity); core/obs/par carry the new analysis families.
    let expected = [
        (
            "src/lib.rs:1: [crate-root-attrs]",
            "missing forbid(unsafe_code)",
        ),
        (
            "src/lib.rs:1: [crate-root-attrs]",
            "missing warn(missing_docs)",
        ),
        ("src/lib.rs:5: [no-panic]", "unwrap in library code"),
        (
            "src/lib.rs:9: [nan-ordering]",
            "partial_cmp().unwrap() sort",
        ),
        ("src/lib.rs:13: [db-linear]", "dB × linear multiply"),
        (
            "src/lib.rs:22: [no-raw-stderr]",
            "eprintln! in library code",
        ),
        (
            "crates/rfmath/src/lib.rs:8: [lossy-cast]",
            "undocumented f64→f32 truncation",
        ),
        (
            "crates/wifi/src/lib.rs:10: [no-panic]",
            "expect in the fault path",
        ),
        (
            "crates/session/src/lib.rs:11: [no-panic]",
            "expect on the checkpoint header",
        ),
        (
            "crates/session/src/lib.rs:24: [lossy-cast]",
            "length-field narrowing in the session kernel crate",
        ),
        // Determinism taint family.
        (
            "crates/core/src/lib.rs:14: [det-unordered]",
            "HashMap in a result crate",
        ),
        (
            "crates/core/src/lib.rs:20: [det-wall-clock]",
            "Instant::now in a result crate",
        ),
        (
            "crates/core/src/lib.rs:26: [det-thread-id]",
            "thread::current in a result crate",
        ),
        (
            "crates/core/src/lib.rs:31: [det-unseeded-rng]",
            "rand::random in a result crate",
        ),
        // Concurrency audit family.
        (
            "crates/par/src/lib.rs:14: [lock-unwrap]",
            "lock().unwrap() in library code",
        ),
        (
            "crates/par/src/lib.rs:46: [lock-order]",
            "par.a after par.b rank inversion",
        ),
        (
            "crates/par/src/lib.rs:52: [lock-order]",
            "undeclared lock par.extra",
        ),
        (
            "crates/par/src/lib.rs:57: [chan-discipline]",
            "undocumented channel push",
        ),
        (
            "crates/obs/src/lib.rs:31: [lock-order]",
            "obs.first after obs.second rank inversion",
        ),
        // Metrics/obs contract family.
        (
            "crates/obs/src/lib.rs:51: [metric-name]",
            "non-snake-case metric name",
        ),
        (
            "crates/obs/src/lib.rs:56: [metric-registry]",
            "unregistered metric",
        ),
        (
            "crates/obs/src/lib.rs:62: [metric-registry]",
            "counter used where a gauge is registered",
        ),
        (
            "OBS_registry.txt:7: [metric-registry]",
            "stale registry entry",
        ),
    ];
    for (needle, what) in expected {
        assert!(
            stdout.contains(needle),
            "expected {what} at `{needle}`; got:\n{stdout}"
        );
    }

    // Exactly the planted violations — escape-hatched sites, the binary
    // entry point, #[cfg(test)] modules, in-order lock acquisitions,
    // documented sends, registered metrics and obs wall-clock reads
    // must all stay quiet. (crate-root-attrs fires once per missing
    // attribute; the lock-unwrap claim keeps no-panic silent on the
    // same token.)
    assert!(
        stdout.contains(&format!("xtask lint: {} violation(s)", expected.len())),
        "exactly the {} seeded violations should fire:\n{stdout}",
        expected.len()
    );
    assert!(
        !stdout.contains("bin/tool.rs"),
        "binary entry points are exempt:\n{stdout}"
    );
    for suppressed in [
        "src/lib.rs:18:",                // allow(no-panic)
        "src/lib.rs:27:",                // allow(no-raw-stderr)
        "crates/par/src/lib.rs:20:",     // allow(lock-unwrap)
        "crates/par/src/lib.rs:39:",     // in-order locks (a then b)
        "crates/par/src/lib.rs:65:",     // documented push
        "crates/par/src/lib.rs:71:",     // allow(chan-discipline)
        "crates/par/src/lib.rs:76:",     // Vec push false-positive guard
        "crates/session/src/lib.rs:30:", // allow(lossy-cast)
        "crates/core/src/lib.rs:37:",    // allow(det-wall-clock)
        "crates/core/src/lib.rs:43:",    // string/BTreeMap guards
        "crates/obs/src/lib.rs:23:",     // in-order locks (first then second)
        "crates/obs/src/lib.rs:40:",     // obs Instant::now det guard
        "crates/obs/src/lib.rs:44:",     // registered counter
        "crates/obs/src/lib.rs:45:",     // registered stage
        "crates/obs/src/lib.rs:68:",     // allow(metric-registry)
    ] {
        assert!(
            !stdout.contains(suppressed),
            "site `{suppressed}` must stay quiet:\n{stdout}"
        );
    }
    // no-panic must not double-report the claimed lock-unwrap token.
    assert!(
        !stdout.contains("crates/par/src/lib.rs:14: [no-panic]"),
        "lock-unwrap claims its token; no-panic must stay silent:\n{stdout}"
    );
}

#[test]
fn seeded_json_report_matches_findings() {
    let out = run_lint("seeded", &["--json"]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    // --json with no path replaces the human output entirely.
    assert!(
        !stdout.contains("violation(s)"),
        "human summary must be suppressed in JSON mode:\n{stdout}"
    );
    assert!(stdout.contains("\"version\": 1"), "{stdout}");
    assert!(stdout.contains("\"total\": 23"), "{stdout}");
    assert!(stdout.contains("\"no-panic\": 3"), "{stdout}");
    assert!(stdout.contains("\"lossy-cast\": 2"), "{stdout}");
    assert!(stdout.contains("\"lock-order\": 3"), "{stdout}");
    assert!(stdout.contains("\"metric-registry\": 3"), "{stdout}");
    // Paths are forward-slash even on Windows.
    assert!(
        stdout.contains("\"file\": \"crates/par/src/lib.rs\""),
        "{stdout}"
    );
}

#[test]
fn seeded_json_to_file_keeps_human_output() {
    let path = Path::new(env!("CARGO_TARGET_TMPDIR")).join("seeded-lint.json");
    let out = run_lint("seeded", &["--json", path.to_str().expect("utf-8 tmpdir")]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    assert!(
        stdout.contains("xtask lint: 23 violation(s)"),
        "human output stays when JSON goes to a file:\n{stdout}"
    );
    let json = std::fs::read_to_string(&path).expect("report file written");
    assert!(json.contains("\"total\": 23"), "{json}");
    assert!(json.ends_with("}\n"), "report is a complete document");
}

#[test]
fn clean_fixture_passes() {
    let out = run_lint("clean", &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean fixture must pass:\n{stdout}");
    assert!(stdout.contains("xtask lint: clean"), "{stdout}");

    let json_out = run_lint("clean", &["--json"]);
    let json = String::from_utf8_lossy(&json_out.stdout);
    assert!(json_out.status.success(), "{json}");
    assert!(json.contains("\"total\": 0"), "{json}");
    assert!(json.contains("\"findings\": []"), "{json}");
}

#[test]
fn usage_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--bogus"])
        .output()
        .expect("xtask binary runs");
    assert_eq!(out.status.code(), Some(2));
    let missing_root = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .output()
        .expect("xtask binary runs");
    assert_eq!(missing_root.status.code(), Some(2));
}

#[test]
fn rules_subcommand_lists_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("rules")
        .output()
        .expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    for rule in [
        "no-panic",
        "nan-ordering",
        "lossy-cast",
        "crate-root-attrs",
        "db-linear",
        "no-raw-stderr",
        "det-unordered",
        "det-wall-clock",
        "det-thread-id",
        "det-unseeded-rng",
        "lock-order",
        "lock-unwrap",
        "chan-discipline",
        "metric-name",
        "metric-registry",
    ] {
        assert!(stdout.contains(rule), "missing rule `{rule}`:\n{stdout}");
    }
}
