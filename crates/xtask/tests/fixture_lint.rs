//! End-to-end fixture tests for `cargo xtask lint`: run the real binary
//! against seeded fixture workspaces under `tests/fixtures/` and assert
//! every deliberately planted violation is detected (and nothing else).

use std::path::Path;
use std::process::{Command, Output};

fn run_lint(fixture: &str) -> Output {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(fixture);
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(["lint", "--root"])
        .arg(&root)
        .output()
        .expect("xtask binary runs")
}

#[test]
fn seeded_violations_are_each_detected() {
    let out = run_lint("seeded");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !out.status.success(),
        "seeded fixture must fail the gate:\n{stdout}"
    );

    // One expectation per planted violation: `file:line: [rule]`.
    let expected = [
        (
            "src/lib.rs:1: [crate-root-attrs]",
            "missing forbid(unsafe_code)",
        ),
        (
            "src/lib.rs:1: [crate-root-attrs]",
            "missing warn(missing_docs)",
        ),
        ("src/lib.rs:5: [no-panic]", "unwrap in library code"),
        (
            "src/lib.rs:9: [nan-ordering]",
            "partial_cmp().unwrap() sort",
        ),
        ("src/lib.rs:13: [db-linear]", "dB × linear multiply"),
        (
            "crates/rfmath/src/lib.rs:8: [lossy-cast]",
            "undocumented f64→f32 truncation",
        ),
        (
            "crates/par/src/lib.rs:12: [no-panic]",
            "lock unwrap in the parallel layer",
        ),
        (
            "src/lib.rs:22: [no-raw-stderr]",
            "eprintln! in library code",
        ),
        (
            "crates/wifi/src/lib.rs:10: [no-panic]",
            "expect in the fault path",
        ),
        (
            "crates/session/src/lib.rs:11: [no-panic]",
            "expect on the checkpoint header",
        ),
    ];
    for (needle, what) in expected {
        assert!(
            stdout.contains(needle),
            "expected {what} at `{needle}`; got:\n{stdout}"
        );
    }

    // Exactly the planted violations — the escape-hatched sites, the
    // binary entry point and the #[cfg(test)] module must stay quiet.
    // (crate-root-attrs fires once per missing attribute.)
    assert!(
        stdout.contains("xtask lint: 10 violation(s)"),
        "exactly the 10 seeded violations should fire:\n{stdout}"
    );
    assert!(
        !stdout.contains("bin/tool.rs"),
        "binary entry points are exempt:\n{stdout}"
    );
    assert!(
        !stdout.contains(":17:") && !stdout.contains(":18:") && !stdout.contains(":27:"),
        "escape-hatched sites must be suppressed:\n{stdout}"
    );
}

#[test]
fn clean_fixture_passes() {
    let out = run_lint("clean");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "clean fixture must pass:\n{stdout}");
    assert!(stdout.contains("xtask lint: clean"), "{stdout}");
}

#[test]
fn rules_subcommand_lists_every_rule() {
    let out = Command::new(env!("CARGO_BIN_EXE_xtask"))
        .arg("rules")
        .output()
        .expect("xtask binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success());
    for rule in [
        "no-panic",
        "nan-ordering",
        "lossy-cast",
        "crate-root-attrs",
        "db-linear",
        "no-raw-stderr",
    ] {
        assert!(stdout.contains(rule), "missing rule `{rule}`:\n{stdout}");
    }
}
