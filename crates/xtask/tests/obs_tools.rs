//! End-to-end tests for the observability report tools: drives the real
//! `xtask` binary (`trace-report`, `obs-diff`) against fixture files,
//! pinning output determinism and the exit-code contract (0 clean,
//! 1 findings, 2 usage/I/O errors) the CI jobs rely on.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_xtask"))
        .args(args)
        .output()
        .expect("spawn xtask")
}

/// Scratch file with a unique name; removed on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn write(name: &str, contents: &str) -> Scratch {
        let path =
            std::env::temp_dir().join(format!("xtask_obs_tools_{}_{name}", std::process::id()));
        fs::write(&path, contents).expect("write fixture");
        Scratch(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("utf-8 temp path")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.0);
    }
}

/// A well-formed two-thread trace: `eval.window` wrapping `music.scan`
/// on thread 1 (scan dominates), a lone `core.mu_k` on thread 2.
const TRACE: &str = "\
{\"ev\":\"enter\",\"span\":\"eval.window\",\"depth\":1,\"thread\":1,\"ts_ns\":0}\n\
{\"ev\":\"enter\",\"span\":\"music.scan\",\"parent\":\"eval.window\",\"depth\":2,\"thread\":1,\"ts_ns\":100}\n\
{\"ev\":\"enter\",\"span\":\"core.mu_k\",\"depth\":1,\"thread\":2,\"ts_ns\":50}\n\
{\"ev\":\"exit\",\"span\":\"core.mu_k\",\"depth\":1,\"thread\":2,\"ts_ns\":250,\"elapsed_ns\":200}\n\
{\"ev\":\"exit\",\"span\":\"music.scan\",\"parent\":\"eval.window\",\"depth\":2,\"thread\":1,\"ts_ns\":800,\"elapsed_ns\":700}\n\
{\"ev\":\"exit\",\"span\":\"eval.window\",\"depth\":1,\"thread\":1,\"ts_ns\":1000,\"elapsed_ns\":1000}\n";

#[test]
fn trace_report_prints_a_deterministic_hotspot_table() {
    let trace = Scratch::write("clean.ndjson", TRACE);
    let first = run(&["trace-report", trace.path()]);
    assert!(first.status.success(), "{first:?}");
    // Clean trace: no warning on stderr.
    assert!(first.stderr.is_empty(), "{first:?}");
    let stdout = String::from_utf8(first.stdout).expect("utf-8");
    assert!(stdout.contains("hotspots"), "{stdout}");
    assert!(stdout.contains("critical path"), "{stdout}");
    // Ranked by self time: scan 700 > window 300 > mu_k 200.
    let scan = stdout.find("music.scan").expect("scan row");
    let window = stdout.find("eval.window").expect("window row");
    let mu_k = stdout.find("core.mu_k").expect("mu_k row");
    assert!(scan < window && window < mu_k, "{stdout}");
    // Byte-identical on a second run.
    let second = run(&["trace-report", trace.path()]);
    assert_eq!(stdout.as_bytes(), second.stdout.as_slice());
}

#[test]
fn trace_report_json_and_collapse_outputs() {
    let trace = Scratch::write("json.ndjson", TRACE);
    let collapse = Scratch::write("collapsed.txt", "");
    let out = run(&[
        "trace-report",
        trace.path(),
        "--json",
        "--top",
        "2",
        "--collapse",
        collapse.path(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("\"hotspots\""), "{stdout}");
    assert!(stdout.contains("\"critical_path\""), "{stdout}");
    // --top 2 truncates the third stage out of the hotspot list.
    assert!(stdout.matches("\"stage\"").count() >= 2, "{stdout}");
    assert!(!stdout.contains("\"stage\": \"core.mu_k\""), "{stdout}");
    let stacks = fs::read_to_string(collapse.0.as_path()).expect("collapse file");
    assert!(stacks.contains("eval.window;music.scan 700"), "{stacks}");
    assert!(stacks.contains("core.mu_k 200"), "{stacks}");
}

#[test]
fn trace_report_warns_on_torn_traces_and_strict_gates() {
    let torn = format!("{TRACE}{{\"ev\":\"exit\",\"span\":\"mus"); // torn final line
    let trace = Scratch::write("torn.ndjson", &torn);
    let lax = run(&["trace-report", trace.path()]);
    assert!(lax.status.success(), "incomplete traces report, not fail");
    let stderr = String::from_utf8(lax.stderr).expect("utf-8");
    assert!(stderr.contains("incomplete trace"), "{stderr}");
    assert!(stderr.contains("1 malformed line(s)"), "{stderr}");
    let strict = run(&["trace-report", trace.path(), "--strict"]);
    assert_eq!(strict.status.code(), Some(1), "{strict:?}");
}

#[test]
fn trace_report_usage_and_io_errors_exit_2() {
    assert_eq!(run(&["trace-report"]).status.code(), Some(2));
    assert_eq!(
        run(&["trace-report", "/no/such/file.ndjson"]).status.code(),
        Some(2)
    );
    let trace = Scratch::write("args.ndjson", TRACE);
    assert_eq!(
        run(&["trace-report", trace.path(), "--top", "zero"])
            .status
            .code(),
        Some(2)
    );
    assert_eq!(
        run(&["trace-report", trace.path(), "--bogus"])
            .status
            .code(),
        Some(2)
    );
}

const OLD_METRICS: &str = r#"{
  "counters": { "eval.windows_total": 128, "obs.alloc.bytes_total": 4096 },
  "gauges": { "par.queue_depth_max": 8 },
  "histograms": {
    "eval.window": {"count": 128, "sum_ns": 1280000, "min_ns": 5000,
                    "max_ns": 30000, "p50_ns": 9000.0, "p95_ns": 21000.0, "p99_ns": 28000.0}
  }
}"#;

#[test]
fn obs_diff_passes_within_budgets() {
    let old = Scratch::write("old_ok.json", OLD_METRICS);
    let new = Scratch::write("new_ok.json", OLD_METRICS);
    let budgets = Scratch::write(
        "budgets_ok.txt",
        "counter eval.windows_total max 200\n\
         counter obs.alloc.bytes_total grow 50\n\
         gauge par.queue_depth_max max 64\n\
         hist eval.window p95 max 1000000\n\
         counter not.collected_yet grow 10\n",
    );
    let out = run(&[
        "obs-diff",
        old.path(),
        new.path(),
        "--budgets",
        budgets.path(),
    ]);
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("0 over budget"), "{stdout}");
    assert!(stdout.contains("1 skipped"), "{stdout}");
}

#[test]
fn obs_diff_exits_one_on_a_seeded_violation() {
    let old = Scratch::write("old_bad.json", OLD_METRICS);
    // Allocation volume doubles past its growth budget.
    let new = Scratch::write(
        "new_bad.json",
        &OLD_METRICS.replace(
            "\"obs.alloc.bytes_total\": 4096",
            "\"obs.alloc.bytes_total\": 9000",
        ),
    );
    let budgets = Scratch::write(
        "budgets_bad.txt",
        "counter obs.alloc.bytes_total grow 100\n\
         counter eval.windows_total max 200\n",
    );
    let out = run(&[
        "obs-diff",
        old.path(),
        new.path(),
        "--budgets",
        budgets.path(),
    ]);
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8(out.stdout).expect("utf-8");
    assert!(stdout.contains("OVER BUDGET"), "{stdout}");
    assert!(stdout.contains("obs.alloc.bytes_total"), "{stdout}");
    assert!(stdout.contains("1 over budget, 1 within"), "{stdout}");
}

#[test]
fn obs_diff_usage_and_parse_errors_exit_2() {
    let old = Scratch::write("old_use.json", OLD_METRICS);
    let new = Scratch::write("new_use.json", OLD_METRICS);
    // Missing --budgets entirely.
    assert_eq!(
        run(&["obs-diff", old.path(), new.path()]).status.code(),
        Some(2)
    );
    // Malformed manifest line.
    let bad = Scratch::write("budgets_use.txt", "counter x min 5\n");
    let out = run(&["obs-diff", old.path(), new.path(), "--budgets", bad.path()]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).expect("utf-8");
    assert!(stderr.contains("line 1"), "{stderr}");
    // Unreadable snapshot.
    assert_eq!(
        run(&[
            "obs-diff",
            "/no/such.json",
            new.path(),
            "--budgets",
            bad.path()
        ])
        .status
        .code(),
        Some(2)
    );
}
