//! Fixture crate root with both required attributes and no violations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Total float ordering, the NaN-safe way.
pub fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(f64::total_cmp);
    v
}
