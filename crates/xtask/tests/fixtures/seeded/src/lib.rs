//! Fixture crate root that is missing both required inner attributes, so
//! the `crate-root-attrs` rule must fire twice on this file.

pub fn panics(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn nan_unsafe(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}

pub fn unit_confused(gain_db: f64, noise_power: f64) -> f64 {
    gain_db * noise_power
}

pub fn suppressed(x: Option<u32>) -> u32 {
    // lint: allow(no-panic) — fixture: annotated escape hatch must suppress
    x.unwrap()
}

pub fn prints_status() {
    eprintln!("calibrating");
}

pub fn suppressed_print() {
    // lint: allow(no-raw-stderr) — fixture: annotated escape hatch must suppress
    println!("ok");
}
