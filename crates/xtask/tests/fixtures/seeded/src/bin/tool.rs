//! Binary entry points are exempt from `no-panic` and `no-raw-stderr`;
//! nothing in this file may be reported.

fn main() {
    let v: Option<u32> = None;
    println!("binaries own stdout");
    eprintln!("and stderr");
    v.expect("binaries may panic");
}
