//! Binary entry points are exempt from `no-panic`; nothing in this file
//! may be reported.

fn main() {
    let v: Option<u32> = None;
    v.expect("binaries may panic");
}
