//! Fixture observability crate: metrics/obs contract seeds — malformed
//! and unregistered metric names, a kind mismatch, registered uses that
//! must stay quiet, plus the obs-side lock-order checks and the
//! determinism false-positive guard (obs is outside the taint scope).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Sink with two ranked locks.
pub struct Sink {
    /// Declared `lock obs.first`.
    pub first: Mutex<u32>,
    /// Declared `lock obs.second`.
    pub second: Mutex<u32>,
}

impl Sink {
    /// Acquisitions in manifest order: quiet.
    pub fn ordered(&self) -> u32 {
        let a = *self.first.lock().unwrap_or_else(PoisonError::into_inner);
        let b = *self.second.lock().unwrap_or_else(PoisonError::into_inner);
        a + b
    }

    /// Rank inversion: `lock-order` must fire on the second acquisition.
    pub fn inverted(&self) -> u32 {
        let b = *self.second.lock().unwrap_or_else(PoisonError::into_inner);
        let a = *self.first.lock().unwrap_or_else(PoisonError::into_inner);
        a + b
    }
}

/// obs is outside the determinism taint scope: wall-clock reads here
/// must stay quiet (false-positive guard for `det-wall-clock`).
pub fn timestamp() -> Instant {
    Instant::now()
}

/// Registered metric uses: quiet.
pub fn counts() {
    counter!("obs.registered_total");
    stage!("obs.good_stage");
}

/// Malformed name: `metric-name` must fire (and suppress the registry
/// check for this site).
pub fn misnamed() {
    counter!("badName");
}

/// Unregistered name: `metric-registry` must fire.
pub fn unregistered() {
    counter!("obs.unregistered_total");
}

/// Registered as a gauge: `metric-registry` must flag the kind
/// mismatch.
pub fn mismatched() {
    counter!("obs.wrong_kind_total");
}

/// Annotated escape hatch: quiet.
pub fn experimental() {
    // lint: allow(metric-registry) — fixture: staging metric, not yet on dashboards
    counter!("obs.experimental_total");
}
