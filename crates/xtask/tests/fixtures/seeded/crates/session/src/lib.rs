//! Fixture session crate: proves the lint walker covers the supervised
//! session layer — one planted `no-panic` violation (a checkpoint
//! header `expect`) and one annotated escape hatch that must stay
//! quiet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads the checkpoint cursor, panicking on short input.
pub fn restore_cursor(bytes: &[u8]) -> u64 {
    let head: [u8; 8] = bytes[..8].try_into().expect("checkpoint header");
    u64::from_le_bytes(head)
}

/// Reads the checkpoint cursor behind a vetted escape hatch.
pub fn restore_cursor_checked(bytes: &[u8]) -> u64 {
    // lint: allow(no-panic) — fixture: length pre-validated by the store
    let head: [u8; 8] = bytes[..8].try_into().expect("checkpoint header");
    u64::from_le_bytes(head)
}
