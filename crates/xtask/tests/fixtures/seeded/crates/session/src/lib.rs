//! Fixture session crate: proves the lint walker covers the supervised
//! session layer — planted `no-panic` (checkpoint header `expect`) and
//! `lossy-cast` (length-field narrowing; session is a kernel crate for
//! cast purposes) violations, plus escape hatches that must stay quiet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Reads the checkpoint cursor, panicking on short input.
pub fn restore_cursor(bytes: &[u8]) -> u64 {
    let head: [u8; 8] = bytes[..8].try_into().expect("checkpoint header");
    u64::from_le_bytes(head)
}

/// Reads the checkpoint cursor behind a vetted escape hatch.
pub fn restore_cursor_checked(bytes: &[u8]) -> u64 {
    // lint: allow(no-panic) — fixture: length pre-validated by the store
    let head: [u8; 8] = bytes[..8].try_into().expect("checkpoint header");
    u64::from_le_bytes(head)
}

/// Truncates a window count into the checkpoint's u32 length field.
pub fn window_count_field(windows: usize) -> u32 {
    windows as u32
}

/// The same narrowing behind a vetted escape hatch.
pub fn window_count_field_checked(windows: usize) -> u32 {
    // lint: allow(lossy-cast) — fixture: count pre-validated ≤ u32::MAX
    windows as u32
}
