//! Fixture receiver crate: proves the lint walker covers the
//! fault-injection modules under `crates/wifi` — one planted
//! `no-panic` violation (an expect in the fault path) and one
//! annotated escape hatch that must stay quiet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn fault_length(len: u32) -> usize {
    usize::try_from(len).expect("fixture fault length")
}

pub fn fault_length_checked(len: u32) -> usize {
    // lint: allow(no-panic) — fixture: u32 always fits in usize here
    usize::try_from(len).expect("fixture fault length")
}
