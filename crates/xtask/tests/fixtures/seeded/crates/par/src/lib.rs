//! Fixture parallel-layer crate: concurrency-audit seeds — a claimed
//! `lock-unwrap`, `lock-order` rank inversions against the fixture
//! `LOCK_ORDER.txt`, and channel sends with and without a documented
//! backpressure story.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::{Mutex, PoisonError};

/// `lock-unwrap` must fire here — and must claim the token so
/// `no-panic` stays quiet (exactly one finding for this line).
pub fn locks_carelessly(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

/// Vetted escape hatch: the annotated `lock-unwrap` stays quiet.
pub fn locks_deliberately(m: &Mutex<u32>) -> u32 {
    // lint: allow(lock-unwrap) — fixture: poisoning recovered by the caller
    *m.lock().expect("fixture lock")
}

/// Ranked locks plus a declared channel, mirroring the real pool.
pub struct Pool {
    /// Declared `lock par.a` (ranked before `b`).
    pub a: Mutex<u32>,
    /// Declared `lock par.b`.
    pub b: Mutex<u32>,
    /// Declared `channel par.jobs`.
    pub jobs: Vec<u32>,
    /// Plain buffer — pushes here are not channel sends.
    pub scratch: Vec<u32>,
}

impl Pool {
    /// Acquisitions in manifest order: quiet.
    pub fn in_order(&self) -> u32 {
        let a = *self.a.lock().unwrap_or_else(PoisonError::into_inner);
        let b = *self.b.lock().unwrap_or_else(PoisonError::into_inner);
        a + b
    }

    /// Rank inversion: `lock-order` must fire on the second acquisition.
    pub fn inverted(&self) -> u32 {
        let b = *self.b.lock().unwrap_or_else(PoisonError::into_inner);
        let a = *self.a.lock().unwrap_or_else(PoisonError::into_inner);
        a + b
    }

    /// Undeclared lock: `lock-order` must fire.
    pub fn rogue(&self, extra: &Mutex<u32>) -> u32 {
        *extra.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Undocumented channel send: `chan-discipline` must fire.
    pub fn feed(&mut self, job: u32) {
        self.jobs.push(job);
    }

    /// Documented channel send: quiet.
    pub fn feed_documented(&mut self, job: u32) {
        // Backpressure: bounded upstream; on disconnect the queue is
        // dropped and pending jobs are discarded.
        self.jobs.push(job);
    }

    /// Annotated channel send: quiet.
    pub fn feed_vetted(&mut self, job: u32) {
        // lint: allow(chan-discipline) — fixture: infallible in-memory queue
        self.jobs.push(job);
    }

    /// Vec push on an undeclared receiver: quiet (false-positive guard).
    pub fn note(&mut self, v: u32) {
        self.scratch.push(v);
    }
}
