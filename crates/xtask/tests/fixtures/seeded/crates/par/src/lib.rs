//! Fixture parallel-layer crate: proves the lint walker covers
//! `crates/par` like any other member — one planted `no-panic`
//! violation (a poisoned-lock unwrap) and one annotated escape hatch
//! that must stay quiet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Mutex;

pub fn locks_carelessly(m: &Mutex<u32>) -> u32 {
    *m.lock().unwrap()
}

pub fn locks_deliberately(m: &Mutex<u32>) -> u32 {
    // lint: allow(no-panic) — fixture: poisoning recovered by the caller
    *m.lock().expect("fixture lock")
}
