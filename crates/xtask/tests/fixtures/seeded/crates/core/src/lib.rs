//! Fixture result-affecting crate: determinism-taint seeds — one true
//! positive per `det-*` rule, one annotated escape hatch, and the
//! false-positive guards (ordered collections, `#[cfg(test)]` modules,
//! mentions inside strings and comments).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;

/// `det-unordered` must fire — exactly once, despite two mentions on
/// the offending line.
pub fn unordered() -> usize {
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len()
}

/// `det-wall-clock` must fire on the body line.
pub fn timed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().subsec_nanos().into()
}

/// `det-thread-id` must fire on the body line.
pub fn who() -> usize {
    format!("{:?}", std::thread::current().id()).len()
}

/// `det-unseeded-rng` must fire on the body line.
pub fn entropy() -> f64 {
    rand::random()
}

/// Annotated escape hatch: quiet.
pub fn pinned_clock() {
    // lint: allow(det-wall-clock) — fixture: measured span is discarded
    let _ = std::time::Instant::now();
}

/// False-positive guards: ordered maps are the sanctioned tool, and a
/// string mention of `Instant::now` must never fire.
pub fn ordered(m: &BTreeMap<u32, u32>) -> usize {
    let banned = "Instant::now";
    m.len() + banned.len()
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn tests_may_use_hash_collections() {
        let s: HashSet<u32> = HashSet::new();
        assert!(s.is_empty());
    }
}
