//! Fixture numeric-kernel crate: carries both root attributes (so
//! `crate-root-attrs` stays quiet) but holds one undocumented lossy cast.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub fn truncates(x: f64) -> f32 {
    x as f32
}

pub fn documented(x: f64) -> usize {
    // lint: allow(lossy-cast) — fixture: bounded by the caller's grid length
    x.floor() as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn unit_tests_may_panic() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
