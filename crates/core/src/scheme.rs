//! The three evaluated detection schemes (§V-A).
//!
//! 1. [`Baseline`] — Euclidean distance of CSI amplitudes (the
//!    conventional CSI detector the paper compares against).
//! 2. [`SubcarrierWeighting`] — Euclidean distance of
//!    subcarrier-weighted RSS changes (Eq. 15).
//! 3. [`SubcarrierAndPathWeighting`] — Euclidean distance of subcarrier-
//!    and path-weighted angular pseudospectra (§IV-C).
//!
//! Every scheme maps a monitoring window of packets to a scalar score;
//! larger scores mean "more different from the calibration profile".

use mpdf_music::covariance::forward_backward;
use mpdf_music::music::bartlett_spectrum;
use mpdf_rfmath::complex::Complex64;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::sanitize::{sanitize_packet_with, SanitizeScratch};

use crate::degrade::{assess_window, WindowHealth};
use crate::error::DetectError;
use crate::profile::{pool_covariances, CalibrationProfile, DetectorConfig};
use crate::subcarrier_weight::SubcarrierWeights;

/// A detection scheme: window of packets → anomaly score.
///
/// Implementations must be deterministic; randomness lives in the
/// measurement layer.
pub trait DetectionScheme {
    /// Short scheme label used in reports.
    fn name(&self) -> &'static str;

    /// Scores a monitoring window against the profile and reports the
    /// window's fault-health. Higher score = more evidence of human
    /// presence.
    ///
    /// # Errors
    /// [`DetectError`] on empty windows, shape mismatches, angle-
    /// estimation failures, or windows degraded beyond the gap budget.
    fn score_with_health(
        &self,
        profile: &CalibrationProfile,
        window: &[CsiPacket],
        config: &DetectorConfig,
    ) -> Result<(f64, WindowHealth), DetectError>;

    /// Scores a monitoring window, discarding the health report.
    ///
    /// # Errors
    /// Same as [`DetectionScheme::score_with_health`].
    fn score(
        &self,
        profile: &CalibrationProfile,
        window: &[CsiPacket],
        config: &DetectorConfig,
    ) -> Result<f64, DetectError> {
        self.score_with_health(profile, window, config)
            .map(|(s, _)| s)
    }
}

/// One memoized quarantine-and-sanitize result (see [`sanitized_window`]).
///
/// The key is the *entire input by value*: raw window content compared
/// bitwise plus every configuration field the pass reads (profile shape,
/// quarantine policy, gap budget, OFDM indices). A hit therefore returns
/// exactly what recomputation would produce — the memo cannot perturb
/// byte-identity, only skip redundant work.
struct SanitizeMemo {
    shape: (usize, usize),
    gap_budget: usize,
    policy: mpdf_wifi::quarantine::QuarantinePolicy,
    indices: Vec<i32>,
    raw: Vec<CsiPacket>,
    sanitized: Vec<CsiPacket>,
    health: WindowHealth,
}

impl SanitizeMemo {
    fn matches(
        &self,
        profile: &CalibrationProfile,
        window: &[CsiPacket],
        config: &DetectorConfig,
        indices: &[i32],
    ) -> bool {
        self.shape == (profile.antennas(), profile.subcarriers())
            && self.gap_budget == config.gap_budget
            && self.policy.saturation_amp.to_bits() == config.quarantine.saturation_amp.to_bits()
            && self.policy.max_saturated_frac.to_bits()
                == config.quarantine.max_saturated_frac.to_bits()
            && self.policy.min_usable_antennas == config.quarantine.min_usable_antennas
            && self.indices == indices
            && self.raw.len() == window.len()
            && self.raw.iter().zip(window).all(|(a, b)| a.bits_eq(b))
    }
}

thread_local! {
    /// Last sanitized window per thread. Every scheme scores through the
    /// same quarantine + phase-sanitization pass, so a campaign scoring a
    /// window under several schemes back-to-back repays the full pass
    /// once and replays it for the rest (a content-bitwise hit costs a
    /// 36 KB compare + clone instead of ~750 `atan2`/`cis` evaluations).
    static SANITIZED_MEMO: std::cell::RefCell<Option<SanitizeMemo>> =
        const { std::cell::RefCell::new(None) };
}

/// Quarantines and validates a window (see [`assess_window`]), then
/// returns sanitized copies of the survivors plus the health report.
/// Results are memoized per thread keyed on the full input content.
fn sanitized_window(
    profile: &CalibrationProfile,
    window: &[CsiPacket],
    config: &DetectorConfig,
) -> Result<(Vec<CsiPacket>, WindowHealth), DetectError> {
    let indices = config.band.indices();
    let hit = SANITIZED_MEMO.with(|memo| {
        memo.borrow().as_ref().and_then(|m| {
            m.matches(profile, window, config, indices)
                .then(|| (m.sanitized.clone(), m.health.clone()))
        })
    });
    if let Some(cached) = hit {
        mpdf_obs::counter!("core.sanitize_memo.hits").inc();
        return Ok(cached);
    }
    mpdf_obs::counter!("core.sanitize_memo.misses").inc();
    let (kept, health) = assess_window(profile, window, config)?;
    let mut scratch = SanitizeScratch::new();
    let sanitized: Vec<CsiPacket> = kept
        .into_iter()
        .map(|mut q| {
            sanitize_packet_with(&mut scratch, &mut q, indices);
            q
        })
        .collect();
    SANITIZED_MEMO.with(|memo| {
        *memo.borrow_mut() = Some(SanitizeMemo {
            shape: (profile.antennas(), profile.subcarriers()),
            gap_budget: config.gap_budget,
            policy: config.quarantine,
            indices: indices.to_vec(),
            raw: window.to_vec(),
            sanitized: sanitized.clone(),
            health: health.clone(),
        });
    });
    Ok((sanitized, health))
}

/// Zeroes the weights of clipped subcarriers and rescales the survivors
/// so the total weight mass is preserved (a rail-stuck tone reports a
/// meaningless amplitude change, not a small one).
fn renormalize_clipped(weights: &[f64], clipped: &[bool]) -> Vec<f64> {
    let mut w: Vec<f64> = weights
        .iter()
        .zip(clipped)
        .map(|(&wk, &c)| if c { 0.0 } else { wk })
        .collect();
    let surviving: f64 = w.iter().sum();
    let original: f64 = weights.iter().sum();
    if surviving > f64::MIN_POSITIVE {
        let scale = original / surviving;
        for wk in &mut w {
            *wk *= scale;
        }
    }
    w
}

/// Effective subcarrier weights: untouched on a clean window, clip-
/// renormalized on a degraded one (the zero-fault byte-identity hinges
/// on the clean branch returning the input weights verbatim).
fn effective_weights(weights: &SubcarrierWeights, health: &WindowHealth) -> Vec<f64> {
    if health.clipped_subcarriers.iter().any(|&c| c) {
        renormalize_clipped(&weights.weights, &health.clipped_subcarriers)
    } else {
        weights.weights.clone()
    }
}

fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Scheme 1: Euclidean distance of CSI amplitudes, averaged over antennas
/// for fairness (§V-A).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Baseline;

impl DetectionScheme for Baseline {
    fn name(&self) -> &'static str {
        "baseline"
    }

    fn score_with_health(
        &self,
        profile: &CalibrationProfile,
        window: &[CsiPacket],
        config: &DetectorConfig,
    ) -> Result<(f64, WindowHealth), DetectError> {
        let _stage = mpdf_obs::stage!("core.score.baseline");
        let (window, health) = sanitized_window(profile, window, config)?;
        let n = window.len() as f64;
        let mut total = 0.0;
        // Row `r` of a (possibly reduced) packet is physical chain `a`.
        for (r, &a) in health.usable_antennas.iter().enumerate() {
            let mut mean_amp = vec![0.0; profile.subcarriers()];
            for p in &window {
                for (k, slot) in mean_amp.iter_mut().enumerate() {
                    *slot += p.get(r, k).norm();
                }
            }
            for v in &mut mean_amp {
                *v /= n;
            }
            total += euclidean(&mean_amp, &profile.static_amplitude()[a]);
        }
        Ok((total / health.usable_antennas.len() as f64, health))
    }
}

/// Ablation comparator: a MAC-layer RSSI detector.
///
/// Conventional device-free systems (paper §VI) use the single wideband
/// RSSI instead of per-subcarrier CSI. This scheme collapses each packet
/// to its total power and scores the |dB change| of the window mean —
/// everything the frequency-diversity schemes exploit is integrated away.
/// Included to quantify how much the CSI granularity itself buys.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RssiBaseline;

impl DetectionScheme for RssiBaseline {
    fn name(&self) -> &'static str {
        "rssi-baseline"
    }

    fn score_with_health(
        &self,
        profile: &CalibrationProfile,
        window: &[CsiPacket],
        config: &DetectorConfig,
    ) -> Result<(f64, WindowHealth), DetectError> {
        let _stage = mpdf_obs::stage!("core.score.rssi");
        let (window, health) = sanitized_window(profile, window, config)?;
        let monitored: f64 = window
            .iter()
            .map(mpdf_wifi::CsiPacket::total_power)
            .sum::<f64>()
            / window.len() as f64;
        // Static wideband power from the stored per-subcarrier profile
        // (antenna-mean), scaled back to a packet total over the chains
        // that actually survived.
        let static_total: f64 =
            profile.static_power().iter().sum::<f64>() * health.usable_antennas.len() as f64;
        if static_total <= f64::MIN_POSITIVE || monitored <= f64::MIN_POSITIVE {
            return Ok((0.0, health));
        }
        Ok(((10.0 * (monitored / static_total).log10()).abs(), health))
    }
}

/// Scheme 2: subcarrier-weighted RSS change (Eq. 12–15).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubcarrierWeighting;

impl DetectionScheme for SubcarrierWeighting {
    fn name(&self) -> &'static str {
        "subcarrier-weighting"
    }

    fn score_with_health(
        &self,
        profile: &CalibrationProfile,
        window: &[CsiPacket],
        config: &DetectorConfig,
    ) -> Result<(f64, WindowHealth), DetectError> {
        let _stage = mpdf_obs::stage!("core.score.subcarrier");
        let (window, health) = sanitized_window(profile, window, config)?;
        let freqs = config.band.frequencies();
        let weights = SubcarrierWeights::from_packets(&window, &freqs);
        // Δs(f_k): per-subcarrier RSS change in dB (the paper measures
        // link sensitivity in dB throughout §III; the multipath factor
        // predicts *relative* sensitivity, which only the log-domain
        // difference exposes — destructive subcarriers have small
        // absolute power but large dB swings).
        let monitored = CsiPacket::median_power_profile(&window);
        let delta: Vec<f64> = monitored
            .iter()
            .zip(profile.static_power())
            .map(|(m, s)| {
                if *s <= f64::MIN_POSITIVE || *m <= f64::MIN_POSITIVE {
                    0.0
                } else {
                    10.0 * (m / s).log10()
                }
            })
            .collect();
        let eff = effective_weights(&weights, &health);
        let weighted: Vec<f64> = delta.iter().zip(&eff).map(|(d, w)| w * d).collect();
        Ok((weighted.iter().map(|d| d * d).sum::<f64>().sqrt(), health))
    }
}

/// Scheme 3: subcarrier weighting + path weighting on angular
/// pseudospectra (§IV-C).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubcarrierAndPathWeighting;

impl SubcarrierAndPathWeighting {
    /// Per-subcarrier forward–backward covariances of a sanitized
    /// window, accumulated structure-of-arrays: one pass over the
    /// packets rank-1-updates every subcarrier's flat accumulator, so
    /// each packet's CSI is read once in row order instead of 30 strided
    /// column gathers. Per accumulator the update sequence — `+=
    /// u_r·conj(u_c)` in packet order, then one `1/N` scale — is the
    /// identical arithmetic [`SlidingCovariance`] runs per subcarrier,
    /// so every covariance is bitwise the incremental/batch estimate
    /// (pinned by `soa_covariances_match_sliding_estimator_bitwise`).
    fn per_subcarrier_fb_covariances(window: &[CsiPacket]) -> Vec<mpdf_rfmath::matrix::CMatrix> {
        let dim = window[0].antennas();
        let subcarriers = window[0].subcarriers();
        let scale = 1.0 / window.len() as f64;
        if dim == 3 {
            // The paper's 3-chain array: fixed-size accumulators stay in
            // registers across the packet loop instead of streaming a
            // 30×9 accumulator table through cache per packet.
            let rows: Vec<[&[Complex64]; 3]> = window
                .iter()
                .map(|p| [p.antenna_row(0), p.antenna_row(1), p.antenna_row(2)])
                .collect();
            return (0..subcarriers)
                .map(|k| {
                    let mut acc = [Complex64::ZERO; 9];
                    for r3 in &rows {
                        let u = [r3[0][k], r3[1][k], r3[2][k]];
                        for (r, &ur) in u.iter().enumerate() {
                            for (c, &uc) in u.iter().enumerate() {
                                acc[r * 3 + c] += ur * uc.conj();
                            }
                        }
                    }
                    let mut m = mpdf_rfmath::matrix::CMatrix::from_rows(3, 3, &acc);
                    m.scale_in_place(scale);
                    forward_backward(&m)
                })
                .collect();
        }
        let mut acc = vec![Complex64::ZERO; subcarriers * dim * dim];
        let mut cols = vec![Complex64::ZERO; subcarriers * dim];
        for p in window {
            // Transpose the packet to column-major once: columns become
            // contiguous `dim`-element snapshots.
            for r in 0..dim {
                for (k, &h) in p.antenna_row(r).iter().enumerate() {
                    cols[k * dim + r] = h;
                }
            }
            for (a, u) in acc.chunks_exact_mut(dim * dim).zip(cols.chunks_exact(dim)) {
                for (row, &ur) in a.chunks_exact_mut(dim).zip(u) {
                    for (slot, &uc) in row.iter_mut().zip(u) {
                        *slot += ur * uc.conj();
                    }
                }
            }
        }
        acc.chunks_exact(dim * dim)
            .map(|chunk| {
                let mut r = mpdf_rfmath::matrix::CMatrix::from_rows(dim, dim, chunk);
                r.scale_in_place(scale);
                forward_backward(&r)
            })
            .collect()
    }

    /// Computes the subcarrier-weighted spatial covariance of a sanitized
    /// window: the SoA per-subcarrier estimates pooled by Eq. 12 weights.
    fn weighted_covariance(
        window: &[CsiPacket],
        weights: &[f64],
    ) -> Result<mpdf_rfmath::matrix::CMatrix, DetectError> {
        let covs = Self::per_subcarrier_fb_covariances(window);
        Ok(pool_covariances(&covs, Some(weights)))
    }
}

impl DetectionScheme for SubcarrierAndPathWeighting {
    fn name(&self) -> &'static str {
        "subcarrier+path-weighting"
    }

    fn score_with_health(
        &self,
        profile: &CalibrationProfile,
        window: &[CsiPacket],
        config: &DetectorConfig,
    ) -> Result<(f64, WindowHealth), DetectError> {
        let _stage = mpdf_obs::stage!("core.score.combined");
        let (window, health) = sanitized_window(profile, window, config)?;
        // Angle estimation needs an aperture: with fewer than two
        // surviving chains there is no spatial spectrum to compare, so
        // the window counts as degraded beyond what this scheme absorbs.
        if health.usable_antennas.len() < 2 {
            return Err(DetectError::DegradedBeyondBudget {
                lost: health.lost().max(1),
                budget: config.gap_budget,
            });
        }
        let freqs = config.band.frequencies();
        let weights = SubcarrierWeights::from_packets(&window, &freqs);
        let eff = effective_weights(&weights, &health);

        // MUSIC 3→2 fallback: when a chain dropped for the whole window,
        // both sides of the comparison shrink to the surviving sub-array
        // — the monitored covariance is already reduced, the static side
        // takes the matching principal submatrix, and the steering model
        // collapses to the surviving (still uniform) sub-ULA. The health
        // report carries `widened_uncertainty` for downstream consumers.
        let (steering, static_cov) = if health.widened_uncertainty {
            (
                config.steering.subset(&health.usable_antennas),
                profile
                    .weighted_static_covariance(Some(&eff))
                    .principal_submatrix(&health.usable_antennas),
            )
        } else {
            (
                config.steering,
                profile.weighted_static_covariance(Some(&eff)),
            )
        };

        // Monitored side: subcarrier-weighted covariance → angular
        // *power* spectrum (Bartlett). The MUSIC pseudospectrum is
        // scale-free — fine for finding angles (it defines the path
        // weights at calibration), but the detection distance needs the
        // power-bearing angular profile of the paper's "subcarrier
        // weighted signal strengths".
        let monitored_cov = Self::weighted_covariance(&window, &eff)?;
        let monitored_spectrum = bartlett_spectrum(&monitored_cov, &steering, &config.grid)?;

        // Calibration side: the same subcarrier weights applied to the
        // stored static covariances (the §IV-C linearity argument).
        let static_spectrum = bartlett_spectrum(&static_cov, &steering, &config.grid)?;

        // Per-angle RSS change in dB inside the ±60° gate. The gate-mean
        // is removed first: a flat dB offset is session gain drift (TX
        // power control / AGC reference), not human presence — humans
        // *redistribute* angular power. The residual is boosted by the
        // Eq. 17 path weights and collapsed by the RMS norm.
        let pw = profile.path_weights();
        let raw: Vec<f64> = monitored_spectrum
            .values()
            .iter()
            .zip(static_spectrum.values())
            .map(|(m, s)| {
                if *m <= f64::MIN_POSITIVE || *s <= f64::MIN_POSITIVE {
                    0.0
                } else {
                    10.0 * (m / s).log10()
                }
            })
            .collect();
        let gated: Vec<(f64, f64)> = raw
            .iter()
            .zip(pw.weights())
            .filter(|(_, w)| **w > 0.0)
            .map(|(d, w)| (*d, *w))
            .collect();
        if gated.is_empty() {
            return Ok((0.0, health));
        }
        let mean = gated.iter().map(|(d, _)| d).sum::<f64>() / gated.len() as f64;
        let sum_sq: f64 = gated
            .iter()
            .map(|(d, w)| {
                let v = w * (d - mean);
                v * v
            })
            .sum();
        Ok(((sum_sq / gated.len() as f64).sqrt(), health))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_music::music::UlaSteering;
    use mpdf_rfmath::complex::Complex64;

    /// Static scene: LOS at 0° plus a weak 35° path.
    fn scene_packets(n: usize, perturb: f64, perturb_angle_deg: f64) -> Vec<CsiPacket> {
        let steering = UlaSteering::three_half_wavelength();
        (0..n)
            .map(|i| {
                let mut data = Vec::with_capacity(90);
                for a in 0..3 {
                    for k in 0..30 {
                        let los = Complex64::from_polar(1.0, 0.02 * k as f64);
                        let side = steering.vector(35f64.to_radians())[a]
                            * Complex64::from_polar(0.3, 0.3 * k as f64);
                        let human = steering.vector(perturb_angle_deg.to_radians())[a]
                            * Complex64::from_polar(perturb, 0.9 * k as f64 + 0.4);
                        data.push(los + side + human);
                    }
                }
                CsiPacket::new(3, 30, data, i as u64, i as f64 * 0.02)
            })
            .collect()
    }

    fn profile_and_config() -> (CalibrationProfile, DetectorConfig) {
        let cfg = DetectorConfig::default();
        let profile = CalibrationProfile::build(&scene_packets(30, 0.0, 0.0), &cfg).unwrap();
        (profile, cfg)
    }

    #[test]
    fn all_schemes_score_zero_ish_on_static_scene() {
        let (profile, cfg) = profile_and_config();
        let window = scene_packets(10, 0.0, 0.0);
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &RssiBaseline,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            let s = scheme.score(&profile, &window, &cfg).unwrap();
            assert!(s < 1e-6, "{} static score {s}", scheme.name());
        }
    }

    #[test]
    fn all_schemes_react_to_perturbation() {
        let (profile, cfg) = profile_and_config();
        let calm = scene_packets(10, 0.0, 0.0);
        let busy = scene_packets(10, 0.4, -20.0);
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &RssiBaseline,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            let s0 = scheme.score(&profile, &calm, &cfg).unwrap();
            let s1 = scheme.score(&profile, &busy, &cfg).unwrap();
            assert!(
                s1 > 10.0 * s0.max(1e-12),
                "{}: calm {s0} busy {s1}",
                scheme.name()
            );
        }
    }

    #[test]
    fn scores_grow_with_perturbation_strength() {
        let (profile, cfg) = profile_and_config();
        let weak = scene_packets(10, 0.1, -20.0);
        let strong = scene_packets(10, 0.5, -20.0);
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            let sw = scheme.score(&profile, &weak, &cfg).unwrap();
            let ss = scheme.score(&profile, &strong, &cfg).unwrap();
            assert!(ss > sw, "{}: weak {sw} strong {ss}", scheme.name());
        }
    }

    #[test]
    fn empty_window_is_an_error() {
        let (profile, cfg) = profile_and_config();
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            assert_eq!(
                scheme.score(&profile, &[], &cfg),
                Err(DetectError::EmptyWindow),
                "{}",
                scheme.name()
            );
        }
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let (profile, cfg) = profile_and_config();
        let bad = CsiPacket::new(2, 30, vec![Complex64::ONE; 60], 0, 0.0);
        let err = Baseline.score(&profile, &[bad], &cfg).unwrap_err();
        assert!(matches!(err, DetectError::ShapeMismatch { .. }));
    }

    #[test]
    fn scheme_names() {
        assert_eq!(Baseline.name(), "baseline");
        assert_eq!(RssiBaseline.name(), "rssi-baseline");
        assert_eq!(SubcarrierWeighting.name(), "subcarrier-weighting");
        assert_eq!(
            SubcarrierAndPathWeighting.name(),
            "subcarrier+path-weighting"
        );
    }

    #[test]
    fn schemes_are_deterministic() {
        let (profile, cfg) = profile_and_config();
        let window = scene_packets(8, 0.3, 10.0);
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            let a = scheme.score(&profile, &window, &cfg).unwrap();
            let b = scheme.score(&profile, &window, &cfg).unwrap();
            assert_eq!(a, b, "{}", scheme.name());
        }
    }

    /// Rebuilds `p` with antenna `dead`'s row overwritten by NaN.
    fn with_dead_row(p: &CsiPacket, dead: usize) -> CsiPacket {
        let mut data = Vec::with_capacity(p.antennas() * p.subcarriers());
        for a in 0..p.antennas() {
            for k in 0..p.subcarriers() {
                data.push(if a == dead {
                    Complex64::new(f64::NAN, 0.0)
                } else {
                    p.get(a, k)
                });
            }
        }
        CsiPacket::new(p.antennas(), p.subcarriers(), data, p.seq, p.timestamp)
    }

    #[test]
    fn all_schemes_survive_a_dead_antenna_row() {
        let (profile, cfg) = profile_and_config();
        let mut window = scene_packets(10, 0.0, 0.0);
        window[2] = with_dead_row(&window[2], 1);
        for scheme in [
            &Baseline as &dyn DetectionScheme,
            &RssiBaseline,
            &SubcarrierWeighting,
            &SubcarrierAndPathWeighting,
        ] {
            let (s, health) = scheme.score_with_health(&profile, &window, &cfg).unwrap();
            assert!(s.is_finite(), "{} scored {s}", scheme.name());
            assert!(health.degraded, "{}", scheme.name());
            assert!(health.widened_uncertainty, "{}", scheme.name());
            assert_eq!(health.usable_antennas, vec![0, 2], "{}", scheme.name());
        }
    }

    #[test]
    fn two_antenna_fallback_still_separates_calm_from_busy() {
        let (profile, cfg) = profile_and_config();
        let mut calm = scene_packets(10, 0.0, 0.0);
        calm[0] = with_dead_row(&calm[0], 1);
        let mut busy = scene_packets(10, 0.4, -20.0);
        busy[0] = with_dead_row(&busy[0], 1);
        let (s0, h0) = SubcarrierAndPathWeighting
            .score_with_health(&profile, &calm, &cfg)
            .unwrap();
        let (s1, h1) = SubcarrierAndPathWeighting
            .score_with_health(&profile, &busy, &cfg)
            .unwrap();
        assert!(h0.widened_uncertainty && h1.widened_uncertainty);
        assert!(s1 > s0, "calm {s0} busy {s1} on the reduced aperture");
    }

    #[test]
    fn combined_scheme_needs_two_antennas() {
        let (profile, cfg) = profile_and_config();
        let mut window = scene_packets(10, 0.0, 0.0);
        window[1] = with_dead_row(&window[1], 1);
        window[4] = with_dead_row(&window[4], 2);
        // Only chain 0 survives every packet: the amplitude schemes still
        // score, the angular scheme aborts with the typed error.
        let (s, health) = Baseline.score_with_health(&profile, &window, &cfg).unwrap();
        assert!(s.is_finite());
        assert_eq!(health.usable_antennas, vec![0]);
        let err = SubcarrierAndPathWeighting
            .score_with_health(&profile, &window, &cfg)
            .unwrap_err();
        assert!(matches!(err, DetectError::DegradedBeyondBudget { .. }));
    }

    #[test]
    fn gap_budget_propagates_through_schemes() {
        let (profile, cfg) = profile_and_config();
        // Keep every third packet of a 30-slot stretch: 20 gaps > budget.
        let sparse: Vec<CsiPacket> = scene_packets(30, 0.0, 0.0).into_iter().step_by(3).collect();
        let err = SubcarrierWeighting
            .score(&profile, &sparse, &cfg)
            .unwrap_err();
        assert_eq!(
            err,
            DetectError::DegradedBeyondBudget {
                lost: 18,
                budget: cfg.gap_budget
            }
        );
    }

    #[test]
    fn soa_covariances_match_sliding_estimator_bitwise() {
        use mpdf_music::covariance::SlidingCovariance;
        let window = scene_packets(25, 0.3, -15.0);
        let soa = SubcarrierAndPathWeighting::per_subcarrier_fb_covariances(&window);
        assert_eq!(soa.len(), 30);
        let mut sliding = SlidingCovariance::new(3, window.len());
        let mut col = Vec::new();
        for (k, fb_soa) in soa.iter().enumerate() {
            sliding.reset();
            for p in &window {
                p.subcarrier_column_into(k, &mut col);
                sliding.push(&col);
            }
            let fb_ref = forward_backward(&sliding.covariance().unwrap());
            for r in 0..3 {
                for c in 0..3 {
                    let a = fb_soa[(r, c)];
                    let b = fb_ref[(r, c)];
                    assert_eq!(
                        (a.re.to_bits(), a.im.to_bits()),
                        (b.re.to_bits(), b.im.to_bits()),
                        "subcarrier {k} entry ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn clipped_subcarriers_renormalize_weight_mass() {
        let w = [0.1, 0.2, 0.3, 0.4];
        let clipped = [false, true, false, false];
        let r = renormalize_clipped(&w, &clipped);
        assert_eq!(r[1], 0.0);
        let total: f64 = r.iter().sum();
        assert!((total - 1.0).abs() < 1e-12, "mass preserved, got {total}");
        // Survivors keep their relative proportions.
        assert!((r[3] / r[0] - 4.0).abs() < 1e-12);
    }
}
