//! Moving-variance detection for mobile targets.
//!
//! §III notes that device-free schemes use the *mean* RSS change for
//! stationary targets and the *variance* for mobile ones (\[18\]). This
//! module implements the variance feature as an extension: a person
//! walking through the area churns the multipath superposition and
//! inflates short-window RSS variance even when the mean change nets out.

use serde::{Deserialize, Serialize};

use mpdf_rfmath::stats::variance;
use mpdf_wifi::csi::CsiPacket;

/// Motion score configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionDetectorConfig {
    /// Packets per variance window.
    pub window: usize,
    /// Detection threshold on the mean subcarrier variance (dB²).
    pub threshold: f64,
}

impl Default for MotionDetectorConfig {
    fn default() -> Self {
        MotionDetectorConfig {
            window: 25,
            threshold: 0.5,
        }
    }
}

/// Mean per-subcarrier RSS variance (dB²) within a packet window — the
/// motion feature.
///
/// # Panics
/// Panics if the window is empty or shapes disagree.
pub fn motion_score(window: &[CsiPacket]) -> f64 {
    assert!(!window.is_empty(), "window must be non-empty");
    let subcarriers = window[0].subcarriers();
    assert!(
        window.iter().all(|p| p.subcarriers() == subcarriers),
        "packets must share shape"
    );
    let mut total = 0.0;
    for k in 0..subcarriers {
        let series: Vec<f64> = window
            .iter()
            .map(|p| {
                let rss = p.rss_db_per_subcarrier();
                rss[k]
            })
            .collect();
        total += variance(&series);
    }
    total / subcarriers as f64
}

/// Scores consecutive windows of a capture and flags motion.
pub fn motion_decisions(packets: &[CsiPacket], config: &MotionDetectorConfig) -> Vec<(f64, bool)> {
    packets
        .chunks_exact(config.window)
        .map(|w| {
            let s = motion_score(w);
            (s, s > config.threshold)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_rfmath::complex::Complex64;

    fn steady_packets(n: usize) -> Vec<CsiPacket> {
        (0..n)
            .map(|i| {
                let data = vec![Complex64::from_re(1.0); 90];
                CsiPacket::new(3, 30, data, i as u64, 0.0)
            })
            .collect()
    }

    fn churning_packets(n: usize) -> Vec<CsiPacket> {
        (0..n)
            .map(|i| {
                let amp = 1.0 + 0.5 * (i as f64 * 1.3).sin();
                let data = vec![Complex64::from_re(amp); 90];
                CsiPacket::new(3, 30, data, i as u64, 0.0)
            })
            .collect()
    }

    #[test]
    fn steady_scene_scores_zero() {
        assert!(motion_score(&steady_packets(20)) < 1e-12);
    }

    #[test]
    fn churn_scores_high() {
        let s = motion_score(&churning_packets(20));
        assert!(s > 1.0, "churn score {s}");
    }

    #[test]
    fn decisions_flag_motion_windows() {
        let mut packets = steady_packets(25);
        packets.extend(churning_packets(25));
        let cfg = MotionDetectorConfig::default();
        let d = motion_decisions(&packets, &cfg);
        assert_eq!(d.len(), 2);
        assert!(!d[0].1, "steady window misflagged: {:?}", d[0]);
        assert!(d[1].1, "motion window missed: {:?}", d[1]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_panics() {
        motion_score(&[]);
    }
}
