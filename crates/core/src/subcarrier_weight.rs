//! Subcarrier weighting (§IV-A2, Eq. 12–15).
//!
//! Subcarriers with consistently large multipath factors are more
//! sensitive to human presence; the weighting scheme boosts them and
//! penalizes unstable or insensitive ones:
//!
//! - Eq. 12 — single-packet weights `|μ_k / Σμ_k|`.
//! - Eq. 13/14 — the stability ratio `r_k`: the fraction of packets in
//!   which subcarrier `k`'s factor exceeds that packet's median factor.
//! - Eq. 15 — combined weights `|μ̄_k·r_k / (Σμ̄ · Σr)|` applied to the
//!   per-subcarrier RSS changes `Δs(f_k)`.

use serde::{Deserialize, Serialize};

use mpdf_rfmath::contract;
use mpdf_rfmath::stats::median;
use mpdf_wifi::csi::CsiPacket;

use crate::multipath_factor::MuGrid;

/// Single-packet subcarrier weights (Eq. 12): `w_k = |μ_k / Σ_j μ_j|`.
///
/// Returns uniform weights when the factors sum to zero (all-dead packet).
pub fn single_packet_weights(mus: &[f64]) -> Vec<f64> {
    let total: f64 = mus.iter().sum();
    if total.abs() <= f64::MIN_POSITIVE {
        return vec![1.0 / mus.len().max(1) as f64; mus.len()];
    }
    let weights: Vec<f64> = mus.iter().map(|&m| (m / total).abs()).collect();
    // Eq. 12 divides by Σμ, so for the pipeline's non-negative factors
    // the weights must partition unity.
    contract::assert_normalized("single-packet weights (Eq. 12)", &weights, 1e-9);
    weights
}

/// Multi-packet subcarrier weights (Eq. 13–15).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubcarrierWeights {
    /// Temporal mean multipath factor `μ̄_k` (winsorized at
    /// [`SubcarrierWeights::MU_CLIP`]).
    pub mean_mu: Vec<f64>,
    /// Stability ratio `r_k ∈ [0, 1]`.
    pub stability: Vec<f64>,
    /// Final combined weights (Eq. 15's multiplier per subcarrier).
    pub weights: Vec<f64>,
}

impl SubcarrierWeights {
    /// Winsorization bound on per-packet multipath factors. A deep-faded
    /// subcarrier has `|H|² ≈ 0` in Eq. 11's denominator, so one noisy
    /// packet can report `μ` in the hundreds and hijack the temporal
    /// mean `μ̄_k`. Physically meaningful factors stay below ~10 (total
    /// destructive superposition of comparable paths); everything above
    /// is clipped before aggregation.
    pub const MU_CLIP: f64 = 10.0;

    /// Computes the weights from the multipath factors of `M` packets
    /// (one `Vec<f64>` per packet).
    ///
    /// # Panics
    /// Panics when `per_packet_mus` is empty or rows have differing
    /// lengths.
    pub fn from_factors(per_packet_mus: &[Vec<f64>]) -> Self {
        assert!(!per_packet_mus.is_empty(), "need at least one packet");
        let k = per_packet_mus[0].len();
        assert!(
            per_packet_mus.iter().all(|m| m.len() == k),
            "all packets must report the same subcarrier count"
        );
        let flat: Vec<f64> = per_packet_mus
            .iter()
            .flat_map(|row| row.iter().copied())
            .collect();
        SubcarrierWeights::from_flat_factors(&flat, k)
    }

    /// Computes the weights from a flat row-major `[packet][subcarrier]`
    /// factor buffer — the allocation-lean core of
    /// [`SubcarrierWeights::from_factors`], fed directly by the hot
    /// monitoring path so a 25-packet window fills one contiguous buffer
    /// instead of 25 per-packet `Vec`s.
    ///
    /// A zero `subcarriers` count yields the empty weight set (matching
    /// the degenerate behaviour of the row-of-empty-rows input).
    ///
    /// # Panics
    /// Panics when `flat` is empty (with `subcarriers > 0`) or is not a
    /// whole number of packets.
    pub fn from_flat_factors(flat: &[f64], subcarriers: usize) -> Self {
        if subcarriers == 0 {
            return SubcarrierWeights {
                mean_mu: Vec::new(),
                stability: Vec::new(),
                weights: Vec::new(),
            };
        }
        assert!(!flat.is_empty(), "need at least one packet");
        assert_eq!(
            flat.len() % subcarriers,
            0,
            "flat factors must hold whole packets"
        );
        let k = subcarriers;
        let m_count = (flat.len() / k) as f64;

        // Eq. 13/14: per-packet medians and exceedance counts.
        let mut mean_mu = vec![0.0; k];
        let mut exceed = vec![0usize; k];
        for mus in flat.chunks_exact(k) {
            let med = median(mus);
            for (i, &mu) in mus.iter().enumerate() {
                mean_mu[i] += mu.min(Self::MU_CLIP);
                if mu > med {
                    exceed[i] += 1;
                }
            }
        }
        for v in &mut mean_mu {
            *v /= m_count;
        }
        let stability: Vec<f64> = exceed.iter().map(|&c| c as f64 / m_count).collect();

        // Eq. 15 normalizer.
        let sum_mu: f64 = mean_mu.iter().sum();
        let sum_r: f64 = stability.iter().sum();
        let denom = sum_mu * sum_r;
        let weights = if denom.abs() <= f64::MIN_POSITIVE {
            vec![1.0 / k as f64; k]
        } else {
            mean_mu
                .iter()
                .zip(&stability)
                .map(|(&mu, &r)| (mu * r / denom).abs())
                .collect()
        };
        contract::assert_non_negative("temporal mean μ̄", &mean_mu);
        contract::assert_unit_interval("stability ratio r (Eq. 14)", &stability);
        contract::assert_non_negative("combined weights (Eq. 15)", &weights);
        SubcarrierWeights {
            mean_mu,
            stability,
            weights,
        }
    }

    /// Computes the weights directly from a window of CSI packets.
    ///
    /// # Panics
    /// Panics when the window is empty or the frequency grid mismatches.
    pub fn from_packets(window: &[CsiPacket], freqs_hz: &[f64]) -> Self {
        let _stage = mpdf_obs::stage!("core.subcarrier_weight");
        assert!(!window.is_empty(), "need at least one packet");
        let grid = MuGrid::new(freqs_hz);
        let k = freqs_hz.len();
        let mut flat = vec![0.0; window.len() * k];
        let mut row_buf = Vec::with_capacity(k);
        {
            // One μ_k stage per window: the per-packet loop is too hot
            // for per-call spans, but the phase still shows up in traces.
            let _mu_stage = mpdf_obs::stage!("core.mu_k");
            for (p, seg) in window.iter().zip(flat.chunks_exact_mut(k)) {
                grid.packet_factors_into(p, &mut row_buf, seg);
            }
        }
        SubcarrierWeights::from_flat_factors(&flat, k)
    }

    /// Number of subcarriers.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// True when no subcarriers are present (cannot happen via
    /// constructors, provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Applies the weights to per-subcarrier RSS changes (Eq. 15's
    /// `Δs̃(f_k) = w_k · Δs(f_k)`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn apply(&self, delta_s: &[f64]) -> Vec<f64> {
        assert_eq!(
            delta_s.len(),
            self.weights.len(),
            "Δs length must match weights"
        );
        delta_s
            .iter()
            .zip(&self.weights)
            .map(|(&d, &w)| w * d)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_packet_weights_normalize() {
        let mus = vec![1.0, 2.0, 3.0, 4.0];
        let w = single_packet_weights(&mus);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[3] > w[0]);
        assert!((w[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_packet_weights_handle_all_zero() {
        let w = single_packet_weights(&[0.0, 0.0]);
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn stability_ratio_counts_median_exceedances() {
        // 3 subcarriers, 4 packets. Subcarrier 2 always above the median,
        // subcarrier 0 never.
        let mus = vec![
            vec![0.1, 1.0, 2.0],
            vec![0.2, 1.1, 2.2],
            vec![0.1, 0.9, 1.9],
            vec![0.3, 1.2, 2.5],
        ];
        let w = SubcarrierWeights::from_factors(&mus);
        assert_eq!(w.stability[0], 0.0);
        assert_eq!(w.stability[1], 0.0); // equals median ⇒ not greater
        assert_eq!(w.stability[2], 1.0);
        // Mean μ per subcarrier.
        assert!((w.mean_mu[2] - 2.15).abs() < 1e-12);
        // Weight concentrates on the stable, large-μ subcarrier.
        let max_w = w.weights.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(w.weights[2], max_w);
    }

    #[test]
    fn unstable_subcarrier_is_penalized_vs_mean_only() {
        // Two subcarriers with the same temporal mean μ, but one flips
        // above/below the median while the other stays high (the Fig. 4
        // scenario). Weighting must prefer the stable one.
        // Use 4 subcarriers so the median is defined by the others.
        let mus = vec![
            vec![3.0, 0.5, 1.0, 1.2], // sc0 high, sc1 low
            vec![0.2, 3.3, 1.0, 1.2], // sc0 low, sc1 high
            vec![3.0, 0.5, 1.0, 1.2],
            vec![3.0, 0.5, 1.0, 1.2],
        ];
        // sc0 mean = 2.3 exceeds median in 3/4 packets; sc1 mean = 1.2
        // exceeds in 1/4.
        let w = SubcarrierWeights::from_factors(&mus);
        assert!(w.stability[0] > w.stability[1]);
        assert!(w.weights[0] > w.weights[1]);
    }

    #[test]
    fn weights_are_nonnegative_and_apply_elementwise() {
        let mus = vec![vec![1.0, 2.0, 0.5], vec![1.5, 1.8, 0.7]];
        let w = SubcarrierWeights::from_factors(&mus);
        assert!(w.weights.iter().all(|&x| x >= 0.0));
        let ds = vec![-3.0, 5.0, 1.0];
        let weighted = w.apply(&ds);
        for i in 0..3 {
            assert!((weighted[i] - w.weights[i] * ds[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_all_zero_factors_fall_back_to_uniform() {
        let mus = vec![vec![0.0, 0.0, 0.0]];
        let w = SubcarrierWeights::from_factors(&mus);
        for &x in &w.weights {
            assert!((x - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn from_packets_smoke() {
        use mpdf_rfmath::complex::Complex64;
        use mpdf_wifi::band::Band;
        let band = Band::wifi_2_4ghz_channel11();
        let freqs = band.frequencies();
        let data = vec![Complex64::ONE; 3 * 30];
        let packets = vec![
            CsiPacket::new(3, 30, data.clone(), 0, 0.0),
            CsiPacket::new(3, 30, data, 1, 0.02),
        ];
        let w = SubcarrierWeights::from_packets(&packets, &freqs);
        assert_eq!(w.len(), 30);
        assert!(!w.is_empty());
        assert!(w.weights.iter().all(|&x| x.is_finite() && x >= 0.0));
        // On a flat channel the f⁻² split makes lower-frequency
        // subcarriers report slightly larger μ, so they cannot be
        // weighted below the upper ones.
        assert!(w.weights[0] >= w.weights[29]);
    }

    #[test]
    fn flat_factors_match_nested_factors_bitwise() {
        let mus = vec![
            vec![0.17, 1.01, 2.3, 0.9],
            vec![0.21, 1.13, 2.2, 1.4],
            vec![0.14, 0.92, 1.9, 0.8],
        ];
        let nested = SubcarrierWeights::from_factors(&mus);
        let flat: Vec<f64> = mus.iter().flatten().copied().collect();
        let flattened = SubcarrierWeights::from_flat_factors(&flat, 4);
        assert_eq!(nested, flattened);
        for (a, b) in nested.weights.iter().zip(&flattened.weights) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn zero_subcarriers_yield_empty_weights() {
        let w = SubcarrierWeights::from_flat_factors(&[], 0);
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "whole packets")]
    fn partial_flat_packet_panics() {
        let _ = SubcarrierWeights::from_flat_factors(&[1.0, 2.0, 3.0], 2);
    }

    #[test]
    #[should_panic(expected = "at least one packet")]
    fn empty_window_panics() {
        let _ = SubcarrierWeights::from_factors(&[]);
    }

    #[test]
    #[should_panic(expected = "same subcarrier count")]
    fn ragged_factors_panic() {
        let _ = SubcarrierWeights::from_factors(&[vec![1.0], vec![1.0, 2.0]]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Random non-negative factor windows satisfy the contracts
            /// wired into the constructors: Eq. 12 weights partition
            /// unity, r_k ∈ [0, 1], Eq. 15 weights finite non-negative.
            #[test]
            fn random_windows_satisfy_weight_contracts(
                vals in proptest::collection::vec(0.0f64..20.0, 24),
                m in 1usize..5,
            ) {
                let k = 24 / m; // m ∈ {1,2,3,4} all divide 24
                let window: Vec<Vec<f64>> =
                    vals.chunks(k).take(m).map(<[f64]>::to_vec).collect();
                let w = SubcarrierWeights::from_factors(&window);
                prop_assert!(w.stability.iter().all(|r| (0.0..=1.0).contains(r)));
                prop_assert!(w.weights.iter().all(|x| x.is_finite() && *x >= 0.0));

                let sw = single_packet_weights(&vals[..k]);
                let sum: f64 = sw.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9, "Eq. 12 sum {sum}");
            }
        }
    }
}
