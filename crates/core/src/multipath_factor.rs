//! The measurable multipath factor `μ_k` (§IV-A1, Eq. 9–11).
//!
//! Per subcarrier `f_k`, `μ_k` is the estimated LOS-power fraction:
//!
//! 1. Approximate the total LOS power by the dominant time-domain tap
//!    `|ĥ(0)|²` (following the paper's refs [11, 21]), computed with a
//!    non-uniform inverse DFT because the Intel 5300 grid has gaps.
//! 2. Split it across subcarriers by the free-space `f⁻²` law (Eq. 10).
//! 3. Divide by the measured per-subcarrier power `|H(f_k)|²` (Eq. 11).
//!
//! Scaling convention: the split is normalized so a perfectly flat
//! (pure-LOS) channel yields `μ_k = 1` on every subcarrier, aligning the
//! estimator with the theoretical `μ` of Eq. 3. The paper's weighting
//! scheme is invariant to this overall scale (weights are normalized),
//! so the convention only affects readability.

use mpdf_rfmath::complex::Complex64;
use mpdf_rfmath::contract;
use mpdf_rfmath::dft::nudft_at_delay;
use mpdf_wifi::csi::CsiPacket;

/// Dominant-tap power `|ĥ(0)|²` of one antenna's CFR row.
///
/// `ĥ(0) = (1/K)Σ_k H(f_k)` — the delay-zero tap of the (normalized)
/// inverse non-uniform DFT.
///
/// # Panics
/// Panics if the row and frequency grid lengths differ or are empty.
pub fn dominant_tap_power(csi_row: &[Complex64], freqs_hz: &[f64]) -> f64 {
    nudft_at_delay(csi_row, freqs_hz, 0.0).norm_sqr()
}

/// Per-subcarrier LOS power estimate `P_L(f_k)` (Eq. 10, normalized so a
/// flat channel gives `P_L(f_k) = |ĥ(0)|²` on every subcarrier).
///
/// # Panics
/// Panics if inputs are empty or lengths differ.
pub fn los_power_split(h0_power: f64, freqs_hz: &[f64]) -> Vec<f64> {
    assert!(!freqs_hz.is_empty(), "frequency grid must be non-empty");
    let k = freqs_hz.len() as f64;
    let inv_sq_sum: f64 = freqs_hz.iter().map(|f| f.powi(-2)).sum();
    freqs_hz
        .iter()
        .map(|f| k * f.powi(-2) / inv_sq_sum * h0_power)
        .collect()
}

/// Precomputed per-grid state for the μ_k estimator.
///
/// Eq. 10's LOS split is `P_L(f_k) = (K·f_k⁻²/Σ_j f_j⁻²) · |ĥ(0)|²`:
/// everything left of `|ĥ(0)|²` depends only on the frequency grid, so a
/// monitoring window (25 packets × 3 antennas on the same band plan)
/// recomputed it 75 times. The grid hoists that prefix once; per row the
/// split is one multiply. Factor values are bit-identical to the free
/// functions below — the prefix is the identical left-associated
/// sub-expression of Eq. 10's original formulation.
#[derive(Debug, Clone, PartialEq)]
pub struct MuGrid {
    freqs_hz: Vec<f64>,
    /// `K·f_k⁻²/Σ_j f_j⁻²` per subcarrier.
    split_prefix: Vec<f64>,
}

impl MuGrid {
    /// Precomputes the split prefix for a frequency grid.
    ///
    /// # Panics
    /// Panics if the grid is empty.
    pub fn new(freqs_hz: &[f64]) -> Self {
        assert!(!freqs_hz.is_empty(), "frequency grid must be non-empty");
        let k = freqs_hz.len() as f64;
        let inv_sq_sum: f64 = freqs_hz.iter().map(|f| f.powi(-2)).sum();
        let split_prefix = freqs_hz
            .iter()
            .map(|f| k * f.powi(-2) / inv_sq_sum)
            .collect();
        MuGrid {
            freqs_hz: freqs_hz.to_vec(),
            split_prefix,
        }
    }

    /// The frequency grid the prefix was built for.
    pub fn freqs_hz(&self) -> &[f64] {
        &self.freqs_hz
    }

    /// Multipath factors `μ_k` of one antenna row (Eq. 11), written into
    /// `out` (cleared and refilled) — the allocation-free core of
    /// [`multipath_factors_row`].
    ///
    /// # Panics
    /// Panics if the row length differs from the grid length.
    pub fn row_factors_into(&self, csi_row: &[Complex64], out: &mut Vec<f64>) {
        assert_eq!(
            csi_row.len(),
            self.freqs_hz.len(),
            "CSI row and frequency grid must have equal length"
        );
        let h0 = dominant_tap_power(csi_row, &self.freqs_hz);
        out.clear();
        out.extend(csi_row.iter().zip(&self.split_prefix).map(|(h, &pre)| {
            let p = pre * h0;
            let power = h.norm_sqr();
            if power <= f64::MIN_POSITIVE {
                0.0
            } else {
                p / power
            }
        }));
        contract::assert_non_negative("multipath factors μ (row)", out);
    }

    /// Antenna-averaged packet factors (Eq. 11), written into the `out`
    /// slice — the allocation-free core of [`multipath_factors`].
    /// `row_buf` is caller-provided scratch reused across packets.
    ///
    /// # Panics
    /// Panics if the packet's subcarrier count or `out.len()` differs
    /// from the grid length.
    pub fn packet_factors_into(&self, packet: &CsiPacket, row_buf: &mut Vec<f64>, out: &mut [f64]) {
        assert_eq!(
            packet.subcarriers(),
            self.freqs_hz.len(),
            "frequency grid must match packet subcarriers"
        );
        assert_eq!(
            out.len(),
            self.freqs_hz.len(),
            "output length must match the frequency grid"
        );
        for v in out.iter_mut() {
            *v = 0.0;
        }
        for a in 0..packet.antennas() {
            self.row_factors_into(packet.antenna_row(a), row_buf);
            for (slot, &v) in out.iter_mut().zip(row_buf.iter()) {
                *slot += v;
            }
        }
        for v in out.iter_mut() {
            *v /= packet.antennas() as f64;
        }
        contract::assert_non_negative("multipath factors μ (packet)", out);
    }
}

/// Multipath factors `μ_k` for one antenna row (Eq. 11).
///
/// Subcarriers with (numerically) zero power get `μ_k = 0` rather than an
/// infinity — a dead subcarrier carries no usable sensitivity signal.
///
/// # Panics
/// Panics if the row and frequency grid lengths differ or are empty.
pub fn multipath_factors_row(csi_row: &[Complex64], freqs_hz: &[f64]) -> Vec<f64> {
    let grid = MuGrid::new(freqs_hz);
    let mut out = Vec::with_capacity(csi_row.len());
    grid.row_factors_into(csi_row, &mut out);
    out
}

/// Multipath factors for a whole packet, averaged over antennas —
/// the per-packet measurement the weighting scheme consumes (the paper
/// notes μ is "directly measurable at runtime from one packet").
///
/// # Panics
/// Panics if the frequency grid length differs from the packet's
/// subcarrier count.
pub fn multipath_factors(packet: &CsiPacket, freqs_hz: &[f64]) -> Vec<f64> {
    let _stage = mpdf_obs::stage!("core.mu_k");
    let grid = MuGrid::new(freqs_hz);
    let mut out = vec![0.0; packet.subcarriers()];
    let mut row_buf = Vec::with_capacity(packet.subcarriers());
    grid.packet_factors_into(packet, &mut row_buf, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_wifi::band::Band;

    fn band_freqs() -> Vec<f64> {
        Band::wifi_2_4ghz_channel11().frequencies()
    }

    #[test]
    fn flat_channel_has_unit_mu() {
        let freqs = band_freqs();
        let row = vec![Complex64::from_re(2.0); 30];
        let mus = multipath_factors_row(&row, &freqs);
        for (k, &mu) in mus.iter().enumerate() {
            // The f⁻² split leaves a ±0.7 % tilt across the 17.5 MHz band.
            assert!((mu - 1.0).abs() < 0.01, "subcarrier {k}: μ={mu}");
        }
    }

    #[test]
    fn los_split_follows_inverse_square() {
        let freqs = band_freqs();
        let pl = los_power_split(4.0, &freqs);
        // Lower frequency ⇒ more power.
        assert!(pl[0] > pl[29]);
        let ratio = pl[0] / pl[29];
        let expect = (freqs[29] / freqs[0]).powi(2);
        assert!((ratio - expect).abs() < 1e-12);
        // Normalization: mean of the split equals the input power.
        let mean: f64 = pl.iter().sum::<f64>() / 30.0;
        assert!((mean - 4.0).abs() < 1e-9);
    }

    #[test]
    fn destructive_subcarrier_has_large_mu() {
        // Two-path CFR: H(f_k) = 1 + 0.8·e^{-jφ_k} with φ varying across
        // the band. Subcarriers near φ=π (destructive) must show larger μ
        // than those near φ=0 (constructive).
        let freqs = band_freqs();
        let excess = 25.0; // metres — multiple phase wraps across the band
        let row: Vec<Complex64> = freqs
            .iter()
            .map(|&f| {
                let phi =
                    2.0 * std::f64::consts::PI * f * excess / mpdf_propagation::SPEED_OF_LIGHT;
                Complex64::ONE + Complex64::from_polar(0.8, -phi)
            })
            .collect();
        let mus = multipath_factors_row(&row, &freqs);
        let powers: Vec<f64> = row.iter().map(|h| h.norm_sqr()).collect();
        // Find most/least powerful subcarriers.
        let (kmax, _) = powers
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        let (kmin, _) = powers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        assert!(
            mus[kmin] > mus[kmax],
            "destructive subcarrier must have larger μ ({} vs {})",
            mus[kmin],
            mus[kmax]
        );
    }

    #[test]
    fn mu_is_scale_invariant() {
        let freqs = band_freqs();
        let row: Vec<Complex64> = (0..30)
            .map(|i| Complex64::from_polar(1.0 + 0.02 * i as f64, 0.1 * i as f64))
            .collect();
        let scaled: Vec<Complex64> = row.iter().map(|&z| z * 7.0).collect();
        let a = multipath_factors_row(&row, &freqs);
        let b = multipath_factors_row(&scaled, &freqs);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-9, "μ must not depend on AGC scale");
        }
    }

    #[test]
    fn dead_subcarrier_yields_zero() {
        let freqs = band_freqs();
        let mut row = vec![Complex64::ONE; 30];
        row[7] = Complex64::ZERO;
        let mus = multipath_factors_row(&row, &freqs);
        assert_eq!(mus[7], 0.0);
        assert!(mus[8].is_finite());
    }

    #[test]
    fn packet_average_over_antennas() {
        let freqs = band_freqs();
        // Antenna 0 flat ×1, antenna 1 flat ×3: both have μ=1 per
        // subcarrier, so the average is 1.
        let mut data = vec![Complex64::ONE; 60];
        for z in data.iter_mut().skip(30) {
            *z = Complex64::from_re(3.0);
        }
        let p = CsiPacket::new(2, 30, data, 0, 0.0);
        let mus = multipath_factors(&p, &freqs);
        for &mu in &mus {
            assert!((mu - 1.0).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        let _ = multipath_factors_row(&[Complex64::ONE], &[1.0, 2.0]);
    }

    #[test]
    fn grid_factors_are_bitwise_identical_to_direct_formulation() {
        // The hoisted split prefix must not perturb a single bit: it is
        // the same left-associated sub-expression Eq. 10 evaluated
        // per call before the hoist.
        let freqs = band_freqs();
        let grid = MuGrid::new(&freqs);
        let row: Vec<Complex64> = freqs
            .iter()
            .enumerate()
            .map(|(i, &f)| {
                let phi = 2.0 * std::f64::consts::PI * f * 11.3 / mpdf_propagation::SPEED_OF_LIGHT;
                Complex64::from_polar(0.9 + 0.01 * i as f64, -phi)
                    + Complex64::from_polar(0.6, 0.37 * i as f64)
            })
            .collect();
        // Row level: grid vs reference split arithmetic.
        let h0 = dominant_tap_power(&row, &freqs);
        let pl = los_power_split(h0, &freqs);
        let mut out = Vec::new();
        grid.row_factors_into(&row, &mut out);
        for (i, (&mu, (h, p))) in out.iter().zip(row.iter().zip(pl)).enumerate() {
            let reference = {
                let power = h.norm_sqr();
                if power <= f64::MIN_POSITIVE {
                    0.0
                } else {
                    p / power
                }
            };
            assert_eq!(mu.to_bits(), reference.to_bits(), "subcarrier {i}");
        }
        // Packet level: buffered path vs the allocating wrapper.
        let mut data = row.clone();
        data.extend(row.iter().map(|&z| z * Complex64::new(0.2, 0.8)));
        let packet = CsiPacket::new(2, 30, data, 0, 0.0);
        let wrapper = multipath_factors(&packet, &freqs);
        let mut row_buf = Vec::new();
        let mut buffered = vec![0.0; 30];
        grid.packet_factors_into(&packet, &mut row_buf, &mut buffered);
        for (i, (a, b)) in wrapper.iter().zip(&buffered).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "subcarrier {i}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// The μ ≥ 0 contract wired into `multipath_factors_row`
            /// holds for arbitrary bounded CFRs, including rows with
            /// near-dead subcarriers.
            #[test]
            fn random_rows_yield_finite_nonnegative_mu(
                parts in proptest::collection::vec((-2.0f64..2.0, -2.0f64..2.0), 30),
            ) {
                let freqs = band_freqs();
                let row: Vec<Complex64> = parts
                    .iter()
                    .map(|&(re, im)| Complex64::new(re, im))
                    .collect();
                let mus = multipath_factors_row(&row, &freqs);
                prop_assert_eq!(mus.len(), 30);
                prop_assert!(mus.iter().all(|m| m.is_finite() && *m >= 0.0));
            }
        }
    }
}
