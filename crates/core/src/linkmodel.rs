//! The paper's analytic one-bounce link model (§III-B, Eq. 2–8).
//!
//! These closed forms describe a link carrying a LOS path and one
//! reflection with amplitude ratio `γ = a_L/a_R > 1` and relative phase
//! `φ`. They are used to generate theory overlays for the Fig. 3
//! experiments and as oracles in tests of the measured multipath factor.

use serde::{Deserialize, Serialize};

/// Parameters of the two-path analysis channel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TwoPathLink {
    /// LOS/reflection amplitude ratio `γ > 0` (the paper assumes `γ > 1`).
    pub gamma: f64,
    /// Phase of the reflected path relative to the LOS, radians.
    pub phi: f64,
}

impl TwoPathLink {
    /// Creates the analysis channel.
    ///
    /// # Panics
    /// Panics if `gamma <= 0` or non-finite.
    pub fn new(gamma: f64, phi: f64) -> Self {
        assert!(gamma > 0.0 && gamma.is_finite(), "gamma must be positive");
        TwoPathLink { gamma, phi }
    }

    /// The multipath factor `μ` of Eq. 3:
    ///
    /// `μ = γ² / (γ² + 1 + 2γ·cos φ)`
    ///
    /// `μ > 1` signals destructive superposition (total power below the
    /// LOS-only level); `μ < 1` constructive.
    pub fn multipath_factor(&self) -> f64 {
        let g2 = self.gamma * self.gamma;
        g2 / (g2 + 1.0 + 2.0 * self.gamma * self.phi.cos())
    }

    /// Link sensitivity (dB) under human shadowing of the LOS with
    /// amplitude attenuation `β` — Eq. 5:
    ///
    /// `Δs_S = 10·lg[(β²γ² + 1 + 2βγ·cos φ)/(γ² + 1 + 2γ·cos φ)]`
    ///
    /// # Panics
    /// Panics unless `0 < β <= 1`.
    pub fn shadow_sensitivity_db(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        let g = self.gamma;
        let num = beta * beta * g * g + 1.0 + 2.0 * beta * g * self.phi.cos();
        let den = g * g + 1.0 + 2.0 * g * self.phi.cos();
        10.0 * (num / den).log10()
    }

    /// Eq. 6 — the shadowing sensitivity rewritten in terms of the
    /// multipath factor `μ` (the substitution the paper makes because `φ`
    /// is unmeasurable on commodity hardware):
    ///
    /// `Δs_S = 10·lg[β + (1−β)·((1−βγ²)/γ²)·μ]`
    ///
    /// # Panics
    /// Panics unless `0 < β <= 1`.
    pub fn shadow_sensitivity_from_mu_db(&self, beta: f64, mu: f64) -> f64 {
        assert!(beta > 0.0 && beta <= 1.0, "beta must be in (0, 1]");
        let g2 = self.gamma * self.gamma;
        let arg = beta + (1.0 - beta) * ((1.0 - beta * g2) / g2) * mu;
        10.0 * arg.max(f64::MIN_POSITIVE).log10()
    }

    /// Link sensitivity (dB) when a person *adds* a reflected path with
    /// amplitude ratio `η = a'_R/a_R` and phase `φ'` — Eq. 8:
    ///
    /// `Δs_R = 10·lg{1 + (η² + 2η[γ·cos φ' + cos(φ'−φ)])/γ² · μ}`
    ///
    /// # Panics
    /// Panics if `eta < 0`.
    pub fn reflection_sensitivity_db(&self, eta: f64, phi_prime: f64) -> f64 {
        assert!(eta >= 0.0, "eta must be non-negative");
        let g = self.gamma;
        let mu = self.multipath_factor();
        let term = (eta * eta + 2.0 * eta * (g * phi_prime.cos() + (phi_prime - self.phi).cos()))
            / (g * g)
            * mu;
        10.0 * (1.0 + term).max(f64::MIN_POSITIVE).log10()
    }

    /// The phase `φ = 2πf·Δd/c` induced by an excess path length `Δd`
    /// (metres) at frequency `f` (Hz) — the configurability relation of
    /// §III-B3.
    pub fn phase_from_excess_length(f_hz: f64, excess_m: f64) -> f64 {
        2.0 * std::f64::consts::PI * f_hz * excess_m / mpdf_propagation::SPEED_OF_LIGHT
    }
}

/// Sensitivity of a pure-LOS link (no multipath) to shadowing:
/// `Δs = 10·lg β² = 20·lg β` — the reference the paper compares against.
pub fn los_only_shadow_db(beta: f64) -> f64 {
    20.0 * beta.log10()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn mu_is_one_without_reflection() {
        // γ → ∞ means no reflected energy: μ → 1.
        let link = TwoPathLink::new(1e9, 1.0);
        assert!((link.multipath_factor() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn mu_flags_superposition_state() {
        // Constructive (φ=0): total power maximal ⇒ μ < 1.
        let cons = TwoPathLink::new(2.0, 0.0);
        assert!(cons.multipath_factor() < 1.0);
        // Destructive (φ=π): μ > 1.
        let dest = TwoPathLink::new(2.0, PI);
        assert!(dest.multipath_factor() > 1.0);
    }

    #[test]
    fn eq5_and_eq6_agree() {
        // Eq. 6 is an algebraic rewrite of Eq. 5 — verify over a sweep.
        for &gamma in &[1.5, 2.0, 4.0, 8.0] {
            for i in 0..32 {
                let phi = -PI + i as f64 * (2.0 * PI / 32.0);
                let link = TwoPathLink::new(gamma, phi);
                let beta = 0.5;
                // Skip the singular point βγ = 1 ∧ φ = ±π, where the
                // shadowed channel cancels exactly and both forms → −∞.
                if (beta * gamma - 1.0).abs() < 1e-9 && (phi.abs() - PI).abs() < 1e-9 {
                    continue;
                }
                let direct = link.shadow_sensitivity_db(beta);
                let via_mu = link.shadow_sensitivity_from_mu_db(beta, link.multipath_factor());
                assert!(
                    (direct - via_mu).abs() < 1e-9,
                    "γ={gamma} φ={phi}: {direct} vs {via_mu}"
                );
            }
        }
    }

    #[test]
    fn shadowing_can_raise_rss() {
        // The paper's §III-B3 condition: cos φ < −γ(β+1)/2... (for suitable
        // parameters Δs_S > 0 — blocking the LOS *increases* RSS).
        // γ must be small enough that the condition is satisfiable.
        let beta = 0.5;
        let gamma = 1.05;
        let link = TwoPathLink::new(gamma, PI); // fully destructive
        let ds = link.shadow_sensitivity_db(beta);
        assert!(ds > 0.0, "expected RSS rise, got {ds} dB");
        // And the common case: RSS drop with benign phase.
        let benign = TwoPathLink::new(3.0, 0.3);
        assert!(benign.shadow_sensitivity_db(beta) < 0.0);
    }

    #[test]
    fn multipath_can_beat_los_only_sensitivity() {
        // §III-B3: if cos φ < −(1+β)/(2βγ), |Δs_S| > |10 lg β²|.
        let beta = 0.7f64;
        let gamma = 1.6;
        let phi = PI; // cos φ = −1 < −(1+0.7)/(2·0.7·1.6) ≈ −0.76 ✓
        let link = TwoPathLink::new(gamma, phi);
        let multi = link.shadow_sensitivity_db(beta).abs();
        let los = los_only_shadow_db(beta).abs();
        assert!(multi > los, "multipath {multi} dB vs LOS-only {los} dB");
    }

    #[test]
    fn sensitivity_scales_monotonically_with_mu() {
        // Fig. 3b's expected trend: for fixed β, γ with 1−βγ² < 0, Δs_S
        // falls (more negative) as μ grows.
        let beta = 0.5;
        let gamma = 3.0; // 1 − βγ² = −3.5 < 0
        let mut last = f64::INFINITY;
        // Stay below total cancellation (arg > 0 needs μ < ~2.57 here).
        for i in 0..12 {
            let mu = 0.2 + i as f64 * 0.2;
            let link = TwoPathLink::new(gamma, 0.0);
            let ds = link.shadow_sensitivity_from_mu_db(beta, mu);
            assert!(ds < last, "Δs must fall with μ");
            last = ds;
        }
    }

    #[test]
    fn reflection_sensitivity_sign_depends_on_phase() {
        let link = TwoPathLink::new(3.0, 0.5);
        // In-phase new reflection boosts RSS...
        let up = link.reflection_sensitivity_db(0.8, 0.0);
        assert!(up > 0.0);
        // ...a suitably out-of-phase one cuts it.
        let down = link.reflection_sensitivity_db(0.8, PI);
        assert!(down < up);
    }

    #[test]
    fn zero_eta_changes_nothing() {
        let link = TwoPathLink::new(2.5, 1.2);
        assert!(link.reflection_sensitivity_db(0.0, 0.7).abs() < 1e-12);
    }

    #[test]
    fn phase_from_geometry() {
        // One wavelength of excess length = 2π phase.
        let f = 2.462e9;
        let lambda = mpdf_propagation::PathLossModel::wavelength(f);
        let phi = TwoPathLink::phase_from_excess_length(f, lambda);
        assert!((phi - 2.0 * PI).abs() < 1e-9);
    }

    #[test]
    fn phase_varies_with_frequency() {
        // §III-B3 configurability: same geometry, different subcarrier ⇒
        // different φ (hence different μ).
        let excess = 3.0; // metres
        let p1 = TwoPathLink::phase_from_excess_length(2.452e9, excess);
        let p2 = TwoPathLink::phase_from_excess_length(2.472e9, excess);
        assert!((p1 - p2).abs() > 0.5, "20 MHz apart must shift phase");
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn bad_beta_panics() {
        TwoPathLink::new(2.0, 0.0).shadow_sensitivity_db(1.5);
    }
}
