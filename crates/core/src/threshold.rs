//! Threshold selection (§IV-C: "determined by the variations of the
//! static profile with respect to certain false positive ... requirements").
//!
//! Scores of held-out *static* windows form an empirical null
//! distribution; the detection threshold is its `(1 − target FP)`
//! quantile. The ROC experiments instead sweep the threshold over the
//! whole score range.

use mpdf_rfmath::stats::Ecdf;
use mpdf_wifi::csi::CsiPacket;

use crate::error::DetectError;
use crate::profile::{CalibrationProfile, DetectorConfig};
use crate::scheme::DetectionScheme;

/// Scores consecutive windows of static packets against the profile —
/// the null-score distribution.
///
/// Windows are non-overlapping chunks of `config.window` packets; a
/// trailing partial window is dropped.
///
/// # Errors
/// Propagates scheme errors; returns [`DetectError::InsufficientCalibration`]
/// when fewer than one full window of packets is supplied.
pub fn static_score_distribution<S: DetectionScheme + ?Sized>(
    profile: &CalibrationProfile,
    static_packets: &[CsiPacket],
    scheme: &S,
    config: &DetectorConfig,
) -> Result<Vec<f64>, DetectError> {
    if static_packets.len() < config.window {
        return Err(DetectError::InsufficientCalibration {
            got: static_packets.len(),
            need: config.window,
        });
    }
    static_packets
        .chunks_exact(config.window)
        .map(|w| scheme.score(profile, w, config))
        .collect()
}

/// Threshold achieving approximately the target false-positive rate on
/// the null scores.
///
/// # Panics
/// Panics if `scores` is empty or `target_fp` outside `(0, 1)`.
pub fn threshold_for_fp(scores: &[f64], target_fp: f64) -> f64 {
    assert!(!scores.is_empty(), "need null scores");
    assert!(
        target_fp > 0.0 && target_fp < 1.0,
        "target FP must be in (0, 1)"
    );
    let ecdf = Ecdf::new(scores);
    // Smallest score with F(x) ≥ 1 − fp; nudge up by one ULP so scores
    // equal to the quantile don't fire. A relative nudge `q·(1+ε)` would
    // move a *negative* quantile down instead, letting tied null scores
    // fire and the realized FP exceed the target.
    let q = ecdf.quantile(1.0 - target_fp);
    q.next_up()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::Baseline;
    use mpdf_rfmath::complex::Complex64;

    fn packets(n: usize, wiggle: f64) -> Vec<CsiPacket> {
        (0..n)
            .map(|i| {
                let data: Vec<Complex64> = (0..90)
                    .map(|j| {
                        Complex64::from_polar(
                            1.0 + wiggle * ((i * 13 + j) as f64).sin() * 0.01,
                            0.01 * j as f64,
                        )
                    })
                    .collect();
                CsiPacket::new(3, 30, data, i as u64, i as f64 * 0.02)
            })
            .collect()
    }

    #[test]
    fn distribution_has_one_score_per_window() {
        let cfg = DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        };
        let profile = CalibrationProfile::build(&packets(30, 1.0), &cfg).unwrap();
        let scores =
            static_score_distribution(&profile, &packets(45, 1.0), &Baseline, &cfg).unwrap();
        assert_eq!(scores.len(), 4); // 45/10 = 4 full windows
        assert!(scores.iter().all(|s| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn too_few_packets_is_an_error() {
        let cfg = DetectorConfig {
            window: 25,
            ..DetectorConfig::default()
        };
        let profile = CalibrationProfile::build(&packets(30, 1.0), &cfg).unwrap();
        let err =
            static_score_distribution(&profile, &packets(10, 1.0), &Baseline, &cfg).unwrap_err();
        assert!(matches!(
            err,
            DetectError::InsufficientCalibration { got: 10, need: 25 }
        ));
    }

    #[test]
    fn threshold_sits_above_most_null_scores() {
        let scores: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let thr = threshold_for_fp(&scores, 0.05);
        let fired = scores.iter().filter(|&&s| s > thr).count();
        assert_eq!(fired, 5);
    }

    #[test]
    fn negative_null_scores_respect_fp_target() {
        // Regression: with an all-negative null (e.g. log-scale scores) the
        // old relative nudge moved the quantile DOWN, so ties at the
        // quantile fired and the realized FP overshot the target.
        let scores: Vec<f64> = (1..=100).map(|i| -(i as f64)).collect();
        let thr = threshold_for_fp(&scores, 0.05);
        let fired = scores.iter().filter(|&&s| s > thr).count();
        assert!(fired <= 5, "realized FP {fired}/100 exceeds 5% target");

        // Ties exactly at a negative quantile must not fire.
        let tied = vec![-3.0; 40];
        let thr = threshold_for_fp(&tied, 0.1);
        assert!(thr > -3.0);
        assert_eq!(tied.iter().filter(|&&s| s > thr).count(), 0);
    }

    #[test]
    fn zero_variance_null_still_works() {
        let scores = vec![2.0; 50];
        let thr = threshold_for_fp(&scores, 0.1);
        assert!(thr > 2.0);
        assert_eq!(scores.iter().filter(|&&s| s > thr).count(), 0);
    }

    #[test]
    #[should_panic(expected = "target FP")]
    fn silly_fp_panics() {
        threshold_for_fp(&[1.0], 1.5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The defining contract: on the very scores used to pick it, the
        /// threshold realizes an empirical FP rate ≤ the target — over
        /// arbitrary distributions including negative, tied and constant
        /// scores.
        #[test]
        fn empirical_fp_never_exceeds_target(
            scores in proptest::collection::vec(-1e6f64..1e6, 1..200),
            target_fp in 0.01f64..0.99,
        ) {
            let thr = threshold_for_fp(&scores, target_fp);
            let fired = scores.iter().filter(|&&s| s > thr).count();
            let allowed = (target_fp * scores.len() as f64).floor() as usize;
            prop_assert!(
                fired <= allowed,
                "{fired}/{} fired, target {target_fp} allows {allowed} (thr {thr})",
                scores.len()
            );
        }

        /// Constant nulls (zero variance) in particular must never fire,
        /// whatever their sign or magnitude.
        #[test]
        fn constant_null_never_fires(
            value in -1e9f64..1e9,
            n in 1usize..100,
            target_fp in 0.01f64..0.99,
        ) {
            let scores = vec![value; n];
            let thr = threshold_for_fp(&scores, target_fp);
            prop_assert!(thr > value, "threshold {thr} not above constant null {value}");
            prop_assert_eq!(scores.iter().filter(|&&s| s > thr).count(), 0);
        }
    }
}
