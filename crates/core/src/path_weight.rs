//! Path weighting (§IV-B2, Eq. 17).
//!
//! The static angular pseudospectrum `Ps(θ)` concentrates power at the LOS
//! direction; reflected (NLOS) directions sit orders lower. Because a
//! single detection threshold applies everywhere, human impacts arriving
//! along NLOS angles drown. The path weights boost them:
//!
//! `w(θ) = 1/Ps(θ)` for `θ_min < θ < θ_max`, `0` otherwise,
//!
//! with the angular gate (±60° in the paper's implementation) excluding
//! the error-prone large-angle region of a short linear array.

use serde::{Deserialize, Serialize};

use mpdf_music::music::Pseudospectrum;

/// Angular weights derived from a calibration pseudospectrum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathWeights {
    angles_deg: Vec<f64>,
    weights: Vec<f64>,
    theta_min_deg: f64,
    theta_max_deg: f64,
}

impl PathWeights {
    /// The paper's angular gate: ±60°.
    pub const DEFAULT_THETA_MIN_DEG: f64 = -60.0;
    /// See [`PathWeights::DEFAULT_THETA_MIN_DEG`].
    pub const DEFAULT_THETA_MAX_DEG: f64 = 60.0;
    /// Default cap on the inverse-spectrum weights. MUSIC pseudospectra
    /// have deep, noisy nulls; an uncapped `1/Ps(θ)` amplifies exactly
    /// the angles where the estimate is least reliable (the same
    /// reliability concern that motivates the paper's angular gate).
    pub const DEFAULT_WEIGHT_CAP: f64 = 30.0;

    /// Builds weights from the static-environment pseudospectrum with the
    /// paper's default ±60° gate and the default weight cap.
    pub fn from_static_spectrum(spectrum: &Pseudospectrum) -> Self {
        PathWeights::with_gate(
            spectrum,
            Self::DEFAULT_THETA_MIN_DEG,
            Self::DEFAULT_THETA_MAX_DEG,
        )
    }

    /// Builds weights with an explicit angular gate and the default cap.
    ///
    /// # Panics
    /// Panics if `theta_min_deg >= theta_max_deg`.
    pub fn with_gate(spectrum: &Pseudospectrum, theta_min_deg: f64, theta_max_deg: f64) -> Self {
        PathWeights::with_gate_and_cap(
            spectrum,
            theta_min_deg,
            theta_max_deg,
            Self::DEFAULT_WEIGHT_CAP,
        )
    }

    /// Builds weights with an explicit angular gate and weight cap.
    ///
    /// # Panics
    /// Panics if `theta_min_deg >= theta_max_deg` or `cap <= 0`.
    pub fn with_gate_and_cap(
        spectrum: &Pseudospectrum,
        theta_min_deg: f64,
        theta_max_deg: f64,
        cap: f64,
    ) -> Self {
        let _stage = mpdf_obs::stage!("core.path_weight");
        assert!(
            theta_min_deg < theta_max_deg,
            "angular gate must be non-empty"
        );
        assert!(cap > 0.0, "weight cap must be positive");
        // Normalize first so weights are invariant to the pseudospectrum's
        // arbitrary scale.
        let norm = spectrum.normalized();
        let weights = norm
            .angles_deg()
            .iter()
            .zip(norm.values())
            .map(|(&deg, &v)| {
                if deg > theta_min_deg && deg < theta_max_deg {
                    (1.0 / v.max(1e-9)).min(cap)
                } else {
                    0.0
                }
            })
            .collect();
        PathWeights {
            angles_deg: norm.angles_deg().to_vec(),
            weights,
            theta_min_deg,
            theta_max_deg,
        }
    }

    /// The angular grid the weights live on (degrees).
    pub fn angles_deg(&self) -> &[f64] {
        &self.angles_deg
    }

    /// The weight values (zero outside the gate).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The angular gate `(θ_min, θ_max)` in degrees.
    pub fn gate_deg(&self) -> (f64, f64) {
        (self.theta_min_deg, self.theta_max_deg)
    }

    /// Applies the weights to a pseudospectrum sampled on the *same* grid,
    /// returning the weighted angular profile.
    ///
    /// # Panics
    /// Panics if the spectrum's grid differs from the weights' grid.
    pub fn apply(&self, spectrum: &Pseudospectrum) -> Vec<f64> {
        assert_eq!(
            spectrum.angles_deg(),
            self.angles_deg.as_slice(),
            "pseudospectrum grid must match path-weight grid"
        );
        let norm = spectrum.normalized();
        norm.values()
            .iter()
            .zip(&self.weights)
            .map(|(&v, &w)| v * w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spectrum_with_peak() -> Pseudospectrum {
        // Peak at 0° (LOS), secondary bump at 40°, floor elsewhere.
        let angles: Vec<f64> = (-90..=90).map(|a| a as f64).collect();
        let values = angles
            .iter()
            .map(|&a| {
                let main = 10.0 * (-((a - 0.0) / 6.0_f64).powi(2)).exp();
                let side = 2.0 * (-((a - 40.0) / 6.0_f64).powi(2)).exp();
                0.05 + main + side
            })
            .collect();
        Pseudospectrum::new(angles, values)
    }

    #[test]
    fn weights_invert_the_spectrum_inside_gate() {
        let spec = spectrum_with_peak();
        let w = PathWeights::from_static_spectrum(&spec);
        // The LOS direction (strongest) receives the smallest non-zero
        // weight inside the gate.
        let w_at = |deg: f64| {
            let idx = w
                .angles_deg()
                .iter()
                .position(|&a| (a - deg).abs() < 1e-9)
                .unwrap();
            w.weights()[idx]
        };
        assert!(w_at(0.0) < w_at(40.0));
        assert!(w_at(40.0) < w_at(55.0));
    }

    #[test]
    fn gate_zeroes_out_of_range_angles() {
        let spec = spectrum_with_peak();
        let w = PathWeights::from_static_spectrum(&spec);
        for (&a, &wt) in w.angles_deg().iter().zip(w.weights()) {
            if a <= -60.0 || a >= 60.0 {
                assert_eq!(wt, 0.0, "angle {a} must be gated out");
            } else {
                assert!(wt > 0.0, "angle {a} must be weighted");
            }
        }
        assert_eq!(w.gate_deg(), (-60.0, 60.0));
    }

    #[test]
    fn custom_gate() {
        let spec = spectrum_with_peak();
        let w = PathWeights::with_gate(&spec, -30.0, 30.0);
        let idx45 = w.angles_deg().iter().position(|&a| a == 45.0).unwrap();
        assert_eq!(w.weights()[idx45], 0.0);
    }

    #[test]
    fn weights_are_scale_invariant() {
        let spec = spectrum_with_peak();
        let scaled = Pseudospectrum::new(
            spec.angles_deg().to_vec(),
            spec.values().iter().map(|v| v * 123.0).collect(),
        );
        let w1 = PathWeights::from_static_spectrum(&spec);
        let w2 = PathWeights::from_static_spectrum(&scaled);
        for (a, b) in w1.weights().iter().zip(w2.weights()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn applying_weights_to_static_spectrum_flattens_it() {
        // w(θ)·Ps(θ) = 1 inside the gate by construction, except where
        // the cap bounds the weight (deep spectrum floor).
        let spec = spectrum_with_peak();
        let w = PathWeights::from_static_spectrum(&spec);
        let applied = w.apply(&spec);
        let cap = PathWeights::DEFAULT_WEIGHT_CAP;
        let mut flat = 0;
        for ((&a, &v), &wt) in spec.angles_deg().iter().zip(&applied).zip(w.weights()) {
            if wt == 0.0 {
                assert_eq!(v, 0.0);
            } else if (wt - cap).abs() < 1e-9 {
                assert!(v <= 1.0 + 1e-9, "capped angle {a}: {v}");
            } else {
                assert!((v - 1.0).abs() < 1e-9, "angle {a}: {v}");
                flat += 1;
            }
        }
        assert!(flat > 10, "some angles must invert exactly");
    }

    #[test]
    fn applying_weights_amplifies_nlos_changes() {
        // A change of equal absolute size at the LOS peak and at the NLOS
        // bump must register larger after weighting at the NLOS angle.
        let base = spectrum_with_peak();
        let w = PathWeights::from_static_spectrum(&base);
        let bump = |center: f64| {
            Pseudospectrum::new(
                base.angles_deg().to_vec(),
                base.angles_deg()
                    .iter()
                    .zip(base.values())
                    .map(|(&a, &v)| v + 1.0 * (-((a - center) / 5.0_f64).powi(2)).exp())
                    .collect(),
            )
        };
        let w_base = w.apply(&base);
        let w_los = w.apply(&bump(0.0));
        let w_nlos = w.apply(&bump(40.0));
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt()
        };
        assert!(
            dist(&w_nlos, &w_base) > dist(&w_los, &w_base),
            "NLOS change must be amplified more"
        );
    }

    #[test]
    #[should_panic(expected = "grid must match")]
    fn mismatched_grid_panics() {
        let spec = spectrum_with_peak();
        let w = PathWeights::from_static_spectrum(&spec);
        let other = Pseudospectrum::new(vec![0.0, 1.0], vec![1.0, 1.0]);
        let _ = w.apply(&other);
    }
}
