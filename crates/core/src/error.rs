//! Error type of the detection pipeline.

use std::error::Error;
use std::fmt;

use mpdf_music::music::MusicError;
use mpdf_propagation::tracer::TraceError;

/// Errors produced by calibration and monitoring.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// A packet window was empty.
    EmptyWindow,
    /// Packets disagree with the configured band/array shape.
    ShapeMismatch {
        /// Expected `(antennas, subcarriers)`.
        expected: (usize, usize),
        /// Found `(antennas, subcarriers)`.
        found: (usize, usize),
    },
    /// Too few calibration packets for the requested windowing.
    InsufficientCalibration {
        /// Packets supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Fault-degraded window lost more packets than the configured
    /// gap budget allows; the window must be aborted, not scored.
    DegradedBeyondBudget {
        /// Packets lost or rejected within the window.
        lost: usize,
        /// The configured tolerance ([`crate::profile::DetectorConfig::gap_budget`]).
        budget: usize,
    },
    /// A constructor was handed parameters outside its documented domain
    /// (e.g. too few null scores, a non-positive shift, stickiness out of
    /// `[0.5, 1)`).
    InvalidConfig {
        /// What was wrong, in one human-readable clause.
        what: String,
    },
    /// A staged recalibration produced a profile that failed the rollback
    /// guard: scored against the retained null-window reservoir it
    /// realized a false-positive rate beyond the configured tolerance,
    /// so the previous profile stays in effect.
    RecalibrationRejected {
        /// False-positive rate the candidate profile realized on the
        /// reservoir.
        realized_fp: f64,
        /// Maximum tolerated reservoir false-positive rate.
        tolerance: f64,
    },
    /// Angle estimation failed.
    Music(MusicError),
    /// Ray tracing over the link geometry failed.
    Trace(TraceError),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::EmptyWindow => write!(f, "packet window is empty"),
            DetectError::ShapeMismatch { expected, found } => write!(
                f,
                "packet shape {found:?} does not match configured {expected:?}"
            ),
            DetectError::InsufficientCalibration { got, need } => {
                write!(f, "calibration needs at least {need} packets, got {got}")
            }
            DetectError::DegradedBeyondBudget { lost, budget } => write!(
                f,
                "window degraded beyond budget: {lost} packets lost, budget {budget}"
            ),
            DetectError::InvalidConfig { what } => {
                write!(f, "invalid configuration: {what}")
            }
            DetectError::RecalibrationRejected {
                realized_fp,
                tolerance,
            } => write!(
                f,
                "recalibration rejected by rollback guard: reservoir FP {realized_fp:.4} exceeds tolerance {tolerance:.4}"
            ),
            DetectError::Music(e) => write!(f, "angle estimation failed: {e}"),
            DetectError::Trace(e) => write!(f, "link geometry is untraceable: {e}"),
        }
    }
}

impl Error for DetectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DetectError::Music(e) => Some(e),
            DetectError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MusicError> for DetectError {
    fn from(e: MusicError) -> Self {
        DetectError::Music(e)
    }
}

impl From<TraceError> for DetectError {
    fn from(e: TraceError) -> Self {
        DetectError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            DetectError::EmptyWindow.to_string(),
            "packet window is empty"
        );
        let e = DetectError::ShapeMismatch {
            expected: (3, 30),
            found: (2, 30),
        };
        assert!(e.to_string().contains("(2, 30)"));
        assert!(e.to_string().contains("(3, 30)"));
        let e = DetectError::InsufficientCalibration { got: 3, need: 50 };
        assert!(e.to_string().contains("at least 50"));
        assert!(e.to_string().contains("got 3"));
        let e = DetectError::DegradedBeyondBudget { lost: 7, budget: 5 };
        assert!(e.to_string().contains("7 packets lost"));
        assert!(e.to_string().contains("budget 5"));
        let e = DetectError::InvalidConfig {
            what: "stickiness must be in [0.5, 1)".into(),
        };
        assert!(e.to_string().contains("invalid configuration"));
        assert!(e.to_string().contains("stickiness"));
        let e = DetectError::RecalibrationRejected {
            realized_fp: 0.42,
            tolerance: 0.2,
        };
        assert!(e.to_string().contains("rollback guard"));
        assert!(e.to_string().contains("0.4200"));
        assert!(e.to_string().contains("0.2000"));
    }

    #[test]
    fn music_display_embeds_inner_message() {
        let inner = MusicError::SignalDimTooLarge {
            sources: 2,
            elements: 2,
        };
        let e = DetectError::Music(inner.clone());
        let msg = e.to_string();
        assert!(msg.starts_with("angle estimation failed"), "{msg}");
        assert!(msg.contains(&inner.to_string()), "{msg}");
    }

    #[test]
    fn trace_display_embeds_inner_message() {
        let inner = TraceError::TxOutsideRoom;
        let e = DetectError::Trace(inner.clone());
        let msg = e.to_string();
        assert!(msg.starts_with("link geometry is untraceable"), "{msg}");
        assert!(msg.contains(&inner.to_string()), "{msg}");
    }

    #[test]
    fn music_error_is_source() {
        let inner = MusicError::SignalDimTooLarge {
            sources: 3,
            elements: 3,
        };
        let e = DetectError::from(inner.clone());
        assert_eq!(e, DetectError::Music(inner.clone()));
        let src = e.source().expect("wrapped error is the source");
        assert_eq!(src.to_string(), inner.to_string());
    }

    #[test]
    fn trace_error_is_source() {
        let inner = TraceError::UnsupportedOrder(7);
        let e = DetectError::from(inner.clone());
        assert_eq!(e, DetectError::Trace(inner.clone()));
        let src = e.source().expect("wrapped error is the source");
        assert_eq!(src.to_string(), inner.to_string());
    }

    #[test]
    fn leaf_variants_have_no_source() {
        assert!(DetectError::EmptyWindow.source().is_none());
        assert!(DetectError::ShapeMismatch {
            expected: (3, 30),
            found: (1, 30),
        }
        .source()
        .is_none());
        assert!(DetectError::InsufficientCalibration { got: 0, need: 1 }
            .source()
            .is_none());
        assert!(DetectError::DegradedBeyondBudget { lost: 3, budget: 2 }
            .source()
            .is_none());
        assert!(DetectError::InvalidConfig { what: "x".into() }
            .source()
            .is_none());
        assert!(DetectError::RecalibrationRejected {
            realized_fp: 0.5,
            tolerance: 0.1,
        }
        .source()
        .is_none());
    }

    #[test]
    fn question_mark_converts_both_inner_errors() {
        fn via_music() -> Result<(), DetectError> {
            Err(MusicError::SignalDimTooLarge {
                sources: 3,
                elements: 3,
            })?;
            Ok(())
        }
        fn via_trace() -> Result<(), DetectError> {
            Err(TraceError::CoincidentEndpoints)?;
            Ok(())
        }
        assert!(matches!(via_music(), Err(DetectError::Music(_))));
        assert!(matches!(via_trace(), Err(DetectError::Trace(_))));
    }
}
