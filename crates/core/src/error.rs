//! Error type of the detection pipeline.

use std::error::Error;
use std::fmt;

use mpdf_music::music::MusicError;

/// Errors produced by calibration and monitoring.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// A packet window was empty.
    EmptyWindow,
    /// Packets disagree with the configured band/array shape.
    ShapeMismatch {
        /// Expected `(antennas, subcarriers)`.
        expected: (usize, usize),
        /// Found `(antennas, subcarriers)`.
        found: (usize, usize),
    },
    /// Too few calibration packets for the requested windowing.
    InsufficientCalibration {
        /// Packets supplied.
        got: usize,
        /// Minimum required.
        need: usize,
    },
    /// Angle estimation failed.
    Music(MusicError),
}

impl fmt::Display for DetectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectError::EmptyWindow => write!(f, "packet window is empty"),
            DetectError::ShapeMismatch { expected, found } => write!(
                f,
                "packet shape {found:?} does not match configured {expected:?}"
            ),
            DetectError::InsufficientCalibration { got, need } => {
                write!(f, "calibration needs at least {need} packets, got {got}")
            }
            DetectError::Music(e) => write!(f, "angle estimation failed: {e}"),
        }
    }
}

impl Error for DetectError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DetectError::Music(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MusicError> for DetectError {
    fn from(e: MusicError) -> Self {
        DetectError::Music(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(DetectError::EmptyWindow.to_string(), "packet window is empty");
        let e = DetectError::ShapeMismatch {
            expected: (3, 30),
            found: (2, 30),
        };
        assert!(e.to_string().contains("(2, 30)"));
        let e = DetectError::InsufficientCalibration { got: 3, need: 50 };
        assert!(e.to_string().contains("at least 50"));
    }

    #[test]
    fn music_error_is_source() {
        let inner = MusicError::SignalDimTooLarge {
            sources: 3,
            elements: 3,
        };
        let e = DetectError::from(inner);
        assert!(e.source().is_some());
    }
}
