//! Calibration profiles (§IV-C, calibration stage).
//!
//! With no human in the monitored area the receiver collects `N` CSI
//! samples and stores everything the monitoring stage will subtract
//! against:
//!
//! - the per-subcarrier static amplitudes and powers (`s(0)`),
//! - per-subcarrier spatial covariances (so subcarrier weights computed at
//!   monitor time can be applied to the *calibration* side too, using the
//!   linearity argument of §IV-C),
//! - the static angular pseudospectrum and the path weights derived from
//!   it (Eq. 17).

use serde::{Deserialize, Serialize};

use mpdf_music::covariance::{forward_backward, SlidingCovariance};
use mpdf_music::music::{pseudospectrum, AngleGrid, Pseudospectrum, UlaSteering};
use mpdf_rfmath::matrix::CMatrix;
use mpdf_wifi::band::Band;
use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::quarantine::{classify, PacketClass, QuarantinePolicy};
use mpdf_wifi::sanitize::{sanitize_packet_with, SanitizeScratch};

use crate::error::DetectError;
use crate::path_weight::PathWeights;

/// Pipeline configuration shared by calibration and monitoring.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Band plan (frequencies + subcarrier indices).
    pub band: Band,
    /// Steering model of the receive array.
    pub steering: UlaSteering,
    /// Assumed number of resolvable paths for MUSIC (2 with 3 antennas).
    pub num_sources: usize,
    /// Angular scan grid.
    pub grid: AngleGrid,
    /// Path-weight angular gate in degrees (paper: ±60°).
    pub theta_gate_deg: (f64, f64),
    /// Monitoring window length in packets (25 ≈ 0.5 s at 50 pkt/s).
    pub window: usize,
    /// Maximum packets a monitoring window may lose (sequence gaps plus
    /// quarantine rejects) before scoring aborts with
    /// [`DetectError::DegradedBeyondBudget`].
    pub gap_budget: usize,
    /// Per-packet validation policy applied before scoring.
    pub quarantine: QuarantinePolicy,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            band: Band::wifi_2_4ghz_channel11(),
            steering: UlaSteering::three_half_wavelength(),
            num_sources: 2,
            grid: AngleGrid::full_front(1.0),
            theta_gate_deg: (
                PathWeights::DEFAULT_THETA_MIN_DEG,
                PathWeights::DEFAULT_THETA_MAX_DEG,
            ),
            window: 25,
            gap_budget: 5,
            quarantine: QuarantinePolicy::default(),
        }
    }
}

/// The stored no-human baseline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationProfile {
    antennas: usize,
    subcarriers: usize,
    /// Mean amplitude `|H|` per `[antenna][subcarrier]`.
    static_amplitude: Vec<Vec<f64>>,
    /// Median power per subcarrier, averaged over antennas — `s(0)(f_k)`.
    static_power: Vec<f64>,
    /// Per-subcarrier spatial covariance of the static scene.
    static_covariances: Vec<CMatrix>,
    /// Static angular pseudospectrum (Fig. 5b's no-human curve).
    static_spectrum: Pseudospectrum,
    /// Path weights derived from the static spectrum (Eq. 17).
    path_weights: PathWeights,
}

impl CalibrationProfile {
    /// Builds a profile from calibration packets.
    ///
    /// Packets are sanitized (linear-phase removal per \[26\]) before any
    /// statistics are taken.
    ///
    /// # Errors
    /// - [`DetectError::EmptyWindow`] with no packets,
    /// - [`DetectError::ShapeMismatch`] if packets disagree with the band,
    /// - [`DetectError::Music`] if the static spectrum cannot be computed.
    pub fn build(
        packets: &[CsiPacket],
        config: &DetectorConfig,
    ) -> Result<CalibrationProfile, DetectError> {
        let _stage = mpdf_obs::stage!("core.calibration");
        if packets.is_empty() {
            return Err(DetectError::EmptyWindow);
        }
        let subcarriers = config.band.num_subcarriers();
        let antennas = packets[0].antennas();
        for p in packets {
            if p.subcarriers() != subcarriers || p.antennas() != antennas {
                return Err(DetectError::ShapeMismatch {
                    expected: (antennas, subcarriers),
                    found: (p.antennas(), p.subcarriers()),
                });
            }
        }
        // Calibration must be built from pristine packets only: a NaN row
        // or rail-stuck chain in the baseline would poison every later
        // comparison, so Degraded packets are dropped here, not repaired.
        let kept: Vec<&CsiPacket> = packets
            .iter()
            .filter(|p| {
                let ok = matches!(classify(p, &config.quarantine), PacketClass::Ok);
                if !ok {
                    mpdf_obs::counter!("core.calibration_quarantined_total").inc();
                }
                ok
            })
            .collect();
        if kept.is_empty() {
            return Err(DetectError::EmptyWindow);
        }

        // Sanitize copies (one scratch carried across the capture).
        let indices = config.band.indices();
        let mut scratch = SanitizeScratch::new();
        let sanitized: Vec<CsiPacket> = kept
            .iter()
            .map(|p| {
                let mut q = (*p).clone();
                sanitize_packet_with(&mut scratch, &mut q, indices);
                q
            })
            .collect();

        // Amplitude / power statistics.
        let n = sanitized.len() as f64;
        let mut static_amplitude = vec![vec![0.0; subcarriers]; antennas];
        for p in &sanitized {
            for (a, row) in static_amplitude.iter_mut().enumerate() {
                for (k, slot) in row.iter_mut().enumerate() {
                    *slot += p.get(a, k).norm();
                }
            }
        }
        for row in &mut static_amplitude {
            for v in row.iter_mut() {
                *v /= n;
            }
        }
        // Median, not mean: robust to bursty narrowband interference in the
        // calibration capture.
        let static_power = CsiPacket::median_power_profile(&sanitized);

        // Per-subcarrier covariances and the pooled static spectrum. One
        // incremental accumulator is reset and refilled per subcarrier —
        // bitwise the batch estimate, without per-snapshot `Vec` churn.
        let mut static_covariances = Vec::with_capacity(subcarriers);
        let mut sliding = SlidingCovariance::new(antennas, sanitized.len());
        let mut col = Vec::with_capacity(antennas);
        for k in 0..subcarriers {
            sliding.reset();
            for p in &sanitized {
                p.subcarrier_column_into(k, &mut col);
                sliding.push(&col);
            }
            let r = sliding
                .covariance()
                .map_err(mpdf_music::music::MusicError::from)?;
            static_covariances.push(forward_backward(&r));
        }
        let pooled = pool_covariances(&static_covariances, None);
        let static_spectrum =
            pseudospectrum(&pooled, &config.steering, config.num_sources, &config.grid)?;
        let path_weights = PathWeights::with_gate(
            &static_spectrum,
            config.theta_gate_deg.0,
            config.theta_gate_deg.1,
        );

        Ok(CalibrationProfile {
            antennas,
            subcarriers,
            static_amplitude,
            static_power,
            static_covariances,
            static_spectrum,
            path_weights,
        })
    }

    /// Reassembles a profile from previously stored parts (checkpoint
    /// restore).
    ///
    /// The Eq. 17 path weights are re-derived from the stored spectrum
    /// under `config.theta_gate_deg` — the identical arithmetic
    /// [`CalibrationProfile::build`] runs — so a restored profile compares
    /// equal to the one that was saved.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] if the part shapes disagree with the
    /// declared `(antennas, subcarriers)` geometry.
    pub fn from_parts(
        antennas: usize,
        subcarriers: usize,
        static_amplitude: Vec<Vec<f64>>,
        static_power: Vec<f64>,
        static_covariances: Vec<CMatrix>,
        static_spectrum: Pseudospectrum,
        config: &DetectorConfig,
    ) -> Result<CalibrationProfile, DetectError> {
        if static_amplitude.len() != antennas
            || static_amplitude.iter().any(|row| row.len() != subcarriers)
        {
            return Err(DetectError::InvalidConfig {
                what: format!("static amplitude is not {antennas}x{subcarriers}"),
            });
        }
        if static_power.len() != subcarriers {
            return Err(DetectError::InvalidConfig {
                what: format!(
                    "static power has {} entries, expected {subcarriers}",
                    static_power.len()
                ),
            });
        }
        if static_covariances.len() != subcarriers
            || static_covariances
                .iter()
                .any(|r| r.rows() != antennas || r.cols() != antennas)
        {
            return Err(DetectError::InvalidConfig {
                what: format!("expected {subcarriers} static covariances of {antennas}x{antennas}"),
            });
        }
        let path_weights = PathWeights::with_gate(
            &static_spectrum,
            config.theta_gate_deg.0,
            config.theta_gate_deg.1,
        );
        Ok(CalibrationProfile {
            antennas,
            subcarriers,
            static_amplitude,
            static_power,
            static_covariances,
            static_spectrum,
            path_weights,
        })
    }

    /// Receive-antenna count the profile was built for.
    pub fn antennas(&self) -> usize {
        self.antennas
    }

    /// Subcarrier count the profile was built for.
    pub fn subcarriers(&self) -> usize {
        self.subcarriers
    }

    /// Mean static amplitude per `[antenna][subcarrier]`.
    pub fn static_amplitude(&self) -> &[Vec<f64>] {
        &self.static_amplitude
    }

    /// Median static power per subcarrier (`s(0)`).
    pub fn static_power(&self) -> &[f64] {
        &self.static_power
    }

    /// Per-subcarrier static spatial covariances.
    pub fn static_covariances(&self) -> &[CMatrix] {
        &self.static_covariances
    }

    /// The static angular pseudospectrum.
    pub fn static_spectrum(&self) -> &Pseudospectrum {
        &self.static_spectrum
    }

    /// Path weights of Eq. 17.
    pub fn path_weights(&self) -> &PathWeights {
        &self.path_weights
    }

    /// Pools the stored per-subcarrier covariances under optional
    /// subcarrier weights (uniform when `None`).
    pub fn weighted_static_covariance(&self, weights: Option<&[f64]>) -> CMatrix {
        pool_covariances(&self.static_covariances, weights)
    }
}

/// Pools per-subcarrier covariances with optional weights.
///
/// # Panics
/// Panics if `covs` is empty or weight length mismatches.
pub fn pool_covariances(covs: &[CMatrix], weights: Option<&[f64]>) -> CMatrix {
    assert!(!covs.is_empty(), "no covariances to pool");
    let m = covs[0].rows();
    // In-place accumulation: entries see the identical `a + b` /
    // `a + b.scale(w)` arithmetic the operator formulation ran, without
    // the two temporary matrices it allocated per subcarrier.
    let mut acc = CMatrix::zeros(m, m);
    match weights {
        None => {
            for r in covs {
                acc.add_in_place(r);
            }
            acc.scale_in_place(1.0 / covs.len() as f64);
        }
        Some(w) => {
            assert_eq!(w.len(), covs.len(), "weight length mismatch");
            let total: f64 = w.iter().sum();
            let total = if total.abs() <= f64::MIN_POSITIVE {
                1.0
            } else {
                total
            };
            for (r, &wk) in covs.iter().zip(w) {
                acc.axpy(wk, r);
            }
            acc.scale_in_place(1.0 / total);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_rfmath::complex::Complex64;

    fn synthetic_packets(n: usize) -> Vec<CsiPacket> {
        // A LOS-dominated 3×30 scene with a weak 35° side path and a touch
        // of deterministic per-packet variation.
        let steering = UlaSteering::three_half_wavelength();
        (0..n)
            .map(|i| {
                let mut data = Vec::with_capacity(90);
                for a in 0..3 {
                    for k in 0..30 {
                        let los = Complex64::from_polar(1.0, 0.02 * k as f64);
                        let side = steering.vector(35f64.to_radians())[a]
                            * Complex64::from_polar(0.3, 0.3 * k as f64 + i as f64 * 0.01);
                        data.push(los + side);
                    }
                }
                CsiPacket::new(3, 30, data, i as u64, i as f64 * 0.02)
            })
            .collect()
    }

    #[test]
    fn build_produces_consistent_shapes() {
        let cfg = DetectorConfig::default();
        let profile = CalibrationProfile::build(&synthetic_packets(20), &cfg).unwrap();
        assert_eq!(profile.antennas(), 3);
        assert_eq!(profile.subcarriers(), 30);
        assert_eq!(profile.static_amplitude().len(), 3);
        assert_eq!(profile.static_power().len(), 30);
        assert_eq!(profile.static_covariances().len(), 30);
        assert_eq!(
            profile.static_spectrum().angles_deg().len(),
            cfg.grid.angles_deg().len()
        );
    }

    #[test]
    fn static_spectrum_resolves_both_paths() {
        let cfg = DetectorConfig::default();
        let profile = CalibrationProfile::build(&synthetic_packets(30), &cfg).unwrap();
        // MUSIC peak *heights* are not power-ordered, but with two sources
        // in the signal subspace both the LOS (0°) and the side path (35°)
        // must appear as peaks — the paper's Fig. 5b structure.
        let peaks = profile.static_spectrum().peaks(2, 0.001);
        assert_eq!(peaks.len(), 2, "peaks: {peaks:?}");
        let mut angles: Vec<f64> = peaks.iter().map(|p| p.0).collect();
        angles.sort_by(f64::total_cmp);
        assert!(angles[0].abs() < 6.0, "LOS peak at {}°", angles[0]);
        assert!(
            (angles[1] - 35.0).abs() < 6.0,
            "side peak at {}°",
            angles[1]
        );
    }

    #[test]
    fn empty_calibration_errors() {
        let cfg = DetectorConfig::default();
        assert_eq!(
            CalibrationProfile::build(&[], &cfg),
            Err(DetectError::EmptyWindow)
        );
    }

    #[test]
    fn shape_mismatch_detected() {
        let cfg = DetectorConfig::default();
        let bad = CsiPacket::new(3, 10, vec![Complex64::ONE; 30], 0, 0.0);
        let err = CalibrationProfile::build(&[bad], &cfg).unwrap_err();
        assert!(matches!(err, DetectError::ShapeMismatch { .. }));
    }

    #[test]
    fn pooled_covariance_weighting() {
        let covs = vec![CMatrix::identity(2), CMatrix::identity(2).scale(3.0)];
        let uniform = pool_covariances(&covs, None);
        assert!((uniform[(0, 0)].re - 2.0).abs() < 1e-12);
        let weighted = pool_covariances(&covs, Some(&[1.0, 0.0]));
        assert!((weighted[(0, 0)].re - 1.0).abs() < 1e-12);
        let weighted2 = pool_covariances(&covs, Some(&[0.25, 0.75]));
        assert!((weighted2[(0, 0)].re - 2.5).abs() < 1e-12);
    }

    #[test]
    fn from_parts_roundtrips_build() {
        let cfg = DetectorConfig::default();
        let p = CalibrationProfile::build(&synthetic_packets(10), &cfg).unwrap();
        let rebuilt = CalibrationProfile::from_parts(
            p.antennas(),
            p.subcarriers(),
            p.static_amplitude().to_vec(),
            p.static_power().to_vec(),
            p.static_covariances().to_vec(),
            p.static_spectrum().clone(),
            &cfg,
        )
        .unwrap();
        assert_eq!(p, rebuilt, "path weights must re-derive identically");
    }

    #[test]
    fn from_parts_rejects_bad_shapes() {
        let cfg = DetectorConfig::default();
        let p = CalibrationProfile::build(&synthetic_packets(10), &cfg).unwrap();
        let err = CalibrationProfile::from_parts(
            p.antennas(),
            p.subcarriers(),
            p.static_amplitude().to_vec(),
            vec![0.0; 3],
            p.static_covariances().to_vec(),
            p.static_spectrum().clone(),
            &cfg,
        )
        .unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }), "{err}");
    }

    #[test]
    fn profile_is_deterministic() {
        let cfg = DetectorConfig::default();
        let p1 = CalibrationProfile::build(&synthetic_packets(10), &cfg).unwrap();
        let p2 = CalibrationProfile::build(&synthetic_packets(10), &cfg).unwrap();
        assert_eq!(p1, p2);
    }
}
