//! Window-level graceful degradation (fault tolerance).
//!
//! Monitoring windows captured under injected receiver faults (see
//! `mpdf_wifi::fault`) arrive with NaN rows, rail-stuck chains, sequence
//! gaps and duplicated packets. [`assess_window`] runs the quarantine
//! pass over a window, drops unusable packets, reduces the survivors to
//! the common usable antenna subset, and reports the damage as a
//! [`WindowHealth`] the detection schemes use to adapt their scoring.
//!
//! On a pristine window the pass is a pure no-op: the returned packets
//! are byte-identical clones in the original order, so fault handling
//! costs the clean pipeline nothing but the classification scan.

use mpdf_wifi::csi::CsiPacket;
use mpdf_wifi::quarantine::{PacketClass, Quarantine};

use crate::error::DetectError;
use crate::profile::{CalibrationProfile, DetectorConfig};

/// The damage report of one monitoring window.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowHealth {
    /// Original antenna indices every surviving packet can still use.
    /// After antenna reduction, row `r` of a returned packet is the
    /// physical chain `usable_antennas[r]`.
    pub usable_antennas: Vec<usize>,
    /// Per-subcarrier clip mask: `true` where at least one packet was
    /// AGC-saturated, so the tone carries no usable amplitude change.
    pub clipped_subcarriers: Vec<bool>,
    /// Sequence gaps inside the window (packets lost upstream).
    pub gaps: usize,
    /// Packets rejected by quarantine (duplicates, no usable antennas).
    pub rejects: usize,
    /// True when any packet was dropped, reduced or clipped.
    pub degraded: bool,
    /// True when the antenna subset shrank: angle estimates run on a
    /// shorter aperture and carry widened uncertainty.
    pub widened_uncertainty: bool,
}

impl WindowHealth {
    /// A pristine window over `antennas` chains and `subcarriers` tones.
    pub fn clean(antennas: usize, subcarriers: usize) -> Self {
        WindowHealth {
            usable_antennas: (0..antennas).collect(),
            clipped_subcarriers: vec![false; subcarriers],
            gaps: 0,
            rejects: 0,
            degraded: false,
            widened_uncertainty: false,
        }
    }

    /// Total packets lost to sequence gaps or quarantine rejects.
    pub fn lost(&self) -> usize {
        self.gaps + self.rejects
    }
}

/// Quarantines, orders and reduces one monitoring window.
///
/// Packets are classified in stream order; rejects are dropped, the
/// survivors are sorted by sequence number (stable — the identity on an
/// in-order capture), late duplicates are removed, and every packet is
/// reduced to the antenna subset usable across the whole window.
///
/// # Errors
/// - [`DetectError::EmptyWindow`] with no packets, or none surviving,
/// - [`DetectError::ShapeMismatch`] if packets disagree with the profile,
/// - [`DetectError::DegradedBeyondBudget`] when gaps + rejects exceed
///   [`DetectorConfig::gap_budget`], or no antenna survives every packet.
pub fn assess_window(
    profile: &CalibrationProfile,
    window: &[CsiPacket],
    config: &DetectorConfig,
) -> Result<(Vec<CsiPacket>, WindowHealth), DetectError> {
    if window.is_empty() {
        return Err(DetectError::EmptyWindow);
    }
    let expected = (profile.antennas(), profile.subcarriers());
    for p in window {
        let found = (p.antennas(), p.subcarriers());
        if found != expected {
            return Err(DetectError::ShapeMismatch { expected, found });
        }
    }

    let mut quarantine = Quarantine::new(config.quarantine);
    let mut kept: Vec<CsiPacket> = Vec::with_capacity(window.len());
    let mut usable: Vec<usize> = (0..profile.antennas()).collect();
    let mut clipped = vec![false; profile.subcarriers()];
    let mut rejects = 0usize;
    let mut any_packet_degraded = false;
    for p in window {
        match quarantine.classify(p) {
            PacketClass::Ok => kept.push(p.clone()),
            PacketClass::Degraded {
                usable_antennas,
                clipped_subcarriers,
            } => {
                any_packet_degraded = true;
                usable.retain(|a| usable_antennas.contains(a));
                for (mask, c) in clipped.iter_mut().zip(&clipped_subcarriers) {
                    *mask |= *c;
                }
                kept.push(p.clone());
            }
            PacketClass::Reject { .. } => rejects += 1,
        }
    }

    // Restore capture order and drop non-adjacent duplicates the
    // stream-level quarantine cannot see.
    kept.sort_by_key(|p| p.seq);
    let before = kept.len();
    kept.dedup_by_key(|p| p.seq);
    rejects += before - kept.len();

    let gaps = match (kept.first(), kept.last()) {
        (Some(first), Some(last)) => {
            // lint: allow(lossy-cast) — window spans are tiny (≤ thousands)
            let span = (last.seq - first.seq + 1) as usize;
            span.saturating_sub(kept.len())
        }
        _ => 0,
    };
    let lost = gaps + rejects;
    if lost > config.gap_budget {
        mpdf_obs::counter!("core.degraded_windows_total").inc();
        return Err(DetectError::DegradedBeyondBudget {
            lost,
            budget: config.gap_budget,
        });
    }
    if kept.is_empty() {
        return Err(DetectError::EmptyWindow);
    }
    if usable.is_empty() {
        // Every chain is corrupt in some surviving packet — there is no
        // consistent sub-array to score on.
        mpdf_obs::counter!("core.degraded_windows_total").inc();
        return Err(DetectError::DegradedBeyondBudget {
            lost: window.len(),
            budget: config.gap_budget,
        });
    }

    let widened = usable.len() < profile.antennas();
    if widened {
        for p in &mut kept {
            *p = p.select_antennas(&usable);
        }
    }
    let degraded = any_packet_degraded || rejects > 0 || gaps > 0 || widened;
    if degraded {
        mpdf_obs::counter!("core.degraded_windows_total").inc();
    }
    Ok((
        kept,
        WindowHealth {
            usable_antennas: usable,
            clipped_subcarriers: clipped,
            gaps,
            rejects,
            degraded,
            widened_uncertainty: widened,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdf_rfmath::complex::Complex64;

    /// A calm 3×30 packet; `dead_rows` lists antennas overwritten with NaN.
    fn packet_with(seq: u64, dead_rows: &[usize]) -> CsiPacket {
        let mut data = Vec::with_capacity(90);
        for a in 0..3 {
            for k in 0..30 {
                data.push(if dead_rows.contains(&a) {
                    Complex64::new(f64::NAN, 0.0)
                } else {
                    Complex64::from_polar(0.5, 0.01 * (a * 30 + k) as f64)
                });
            }
        }
        CsiPacket::new(3, 30, data, seq, seq as f64 * 0.02)
    }

    fn packet(seq: u64) -> CsiPacket {
        packet_with(seq, &[])
    }

    fn profile_and_config() -> (CalibrationProfile, DetectorConfig) {
        let cfg = DetectorConfig::default();
        let packets: Vec<CsiPacket> = (0..20).map(packet).collect();
        let profile = CalibrationProfile::build(&packets, &cfg).unwrap();
        (profile, cfg)
    }

    #[test]
    fn clean_window_passes_through_unchanged() {
        let (profile, cfg) = profile_and_config();
        let window: Vec<CsiPacket> = (100..110).map(packet).collect();
        let (kept, health) = assess_window(&profile, &window, &cfg).unwrap();
        assert_eq!(kept, window);
        assert_eq!(health, WindowHealth::clean(3, 30));
        assert!(!health.degraded);
        assert_eq!(health.lost(), 0);
    }

    #[test]
    fn nan_row_shrinks_the_antenna_subset() {
        let (profile, cfg) = profile_and_config();
        let mut window: Vec<CsiPacket> = (0..10).map(packet).collect();
        window[3] = packet_with(3, &[1]);
        let (kept, health) = assess_window(&profile, &window, &cfg).unwrap();
        assert_eq!(health.usable_antennas, vec![0, 2]);
        assert!(health.widened_uncertainty);
        assert!(health.degraded);
        assert_eq!(kept.len(), 10);
        for p in &kept {
            assert_eq!(p.antennas(), 2);
            for a in 0..2 {
                for k in 0..30 {
                    assert!(p.get(a, k).norm().is_finite());
                }
            }
        }
    }

    #[test]
    fn sequence_gaps_within_budget_are_tolerated() {
        let (profile, cfg) = profile_and_config();
        // 10 slots, 3 missing: gaps = 3 ≤ default budget 5.
        let window: Vec<CsiPacket> = [0u64, 1, 2, 4, 6, 8, 9]
            .iter()
            .map(|&s| packet(s))
            .collect();
        let (kept, health) = assess_window(&profile, &window, &cfg).unwrap();
        assert_eq!(kept.len(), 7);
        assert_eq!(health.gaps, 3);
        assert!(health.degraded);
        assert!(!health.widened_uncertainty);
    }

    #[test]
    fn gaps_beyond_budget_abort_with_typed_error() {
        let (profile, cfg) = profile_and_config();
        // Sequence span 20 with only 5 packets: 16 gaps > budget 5.
        let window: Vec<CsiPacket> = [0u64, 5, 10, 15, 20].iter().map(|&s| packet(s)).collect();
        let err = assess_window(&profile, &window, &cfg).unwrap_err();
        assert_eq!(
            err,
            DetectError::DegradedBeyondBudget {
                lost: 16,
                budget: 5
            }
        );
    }

    #[test]
    fn out_of_order_windows_are_resorted_and_deduped() {
        let (profile, cfg) = profile_and_config();
        let window: Vec<CsiPacket> = [2u64, 0, 1, 3, 1].iter().map(|&s| packet(s)).collect();
        let (kept, health) = assess_window(&profile, &window, &cfg).unwrap();
        let seqs: Vec<u64> = kept.iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
        assert_eq!(health.rejects, 1, "late duplicate dropped");
        assert!(health.degraded);
    }

    #[test]
    fn all_chains_corrupt_is_beyond_budget() {
        let (profile, cfg) = profile_and_config();
        // A different chain dies in each packet: empty intersection.
        let window = vec![
            packet_with(0, &[0]),
            packet_with(1, &[1]),
            packet_with(2, &[2]),
        ];
        let err = assess_window(&profile, &window, &cfg).unwrap_err();
        assert!(matches!(err, DetectError::DegradedBeyondBudget { .. }));
    }

    #[test]
    fn empty_window_is_an_error() {
        let (profile, cfg) = profile_and_config();
        assert_eq!(
            assess_window(&profile, &[], &cfg),
            Err(DetectError::EmptyWindow)
        );
    }
}
