//! Fade level — the related-work comparator (§VI, Wilson & Patwari \[12\]).
//!
//! Fade level is the difference between the RSS a link actually measures
//! and the RSS a propagation formula predicts. Deep-faded links
//! (measured ≪ predicted) behave very differently from anti-faded ones.
//! The paper contrasts its multipath factor against this metric: fade
//! level needs a propagation model and channel sweeps, while `μ` comes
//! from a single packet without any formula. Implemented here so the
//! ablation benches can compare both as link-state indicators.

use serde::{Deserialize, Serialize};

use mpdf_propagation::pathloss::PathLossModel;
use mpdf_rfmath::db::power_to_db;

/// Classification of a link by fade level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FadeState {
    /// Measured power well below prediction: destructive multipath.
    DeepFade,
    /// Within the tolerance band of the prediction.
    Neutral,
    /// Measured power above prediction: constructive multipath.
    AntiFade,
}

/// Fade level in dB: `measured − predicted`.
///
/// # Panics
/// Panics if either power is non-positive.
pub fn fade_level_db(measured_power: f64, predicted_power: f64) -> f64 {
    assert!(
        measured_power > 0.0 && predicted_power > 0.0,
        "powers must be positive"
    );
    power_to_db(measured_power / predicted_power)
}

/// Predicts the received power of a link via the path-loss formula
/// (paper Eq. 9) and classifies the measured power against it.
///
/// `band_db` is the +/- tolerance of the [`FadeState::Neutral`] band.
pub fn classify_fade(
    measured_power: f64,
    distance_m: f64,
    freq_hz: f64,
    model: &PathLossModel,
    band_db: f64,
) -> (f64, FadeState) {
    let predicted = model.power_gain(distance_m, freq_hz);
    let level = fade_level_db(measured_power, predicted);
    let state = if level < -band_db {
        FadeState::DeepFade
    } else if level > band_db {
        FadeState::AntiFade
    } else {
        FadeState::Neutral
    };
    (level, state)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fade_level_signs() {
        assert!((fade_level_db(0.5, 1.0) + 3.0103).abs() < 1e-3);
        assert!((fade_level_db(2.0, 1.0) - 3.0103).abs() < 1e-3);
        assert_eq!(fade_level_db(1.0, 1.0), 0.0);
    }

    #[test]
    fn classification_bands() {
        let model = PathLossModel::FREE_SPACE;
        let f = 2.462e9;
        let d = 4.0;
        let predicted = model.power_gain(d, f);
        let (_, deep) = classify_fade(predicted * 0.1, d, f, &model, 3.0);
        assert_eq!(deep, FadeState::DeepFade);
        let (_, anti) = classify_fade(predicted * 10.0, d, f, &model, 3.0);
        assert_eq!(anti, FadeState::AntiFade);
        let (lvl, neutral) = classify_fade(predicted * 1.2, d, f, &model, 3.0);
        assert_eq!(neutral, FadeState::Neutral);
        assert!(lvl.abs() < 3.0);
    }

    #[test]
    #[should_panic(expected = "powers must be positive")]
    fn zero_power_panics() {
        let _ = fade_level_db(0.0, 1.0);
    }
}
