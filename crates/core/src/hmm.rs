//! Hidden-Markov smoothing of the decision stream.
//!
//! The paper observes a plateau in its ROC curves and attributes it to
//! *magnified background dynamics* — the weighting schemes amplify
//! occasional far-away motion as well as the target's. Its proposed
//! remedy (§V-B1): "model the static profiles as well, e.g. via hidden
//! Markov models \[27\]". This module implements that extension.
//!
//! A two-state HMM (Absent / Present) runs over the per-window score
//! stream. Emissions are Gaussians in log-score space — the Absent state
//! is fit to the calibration null scores, the Present state is a shifted
//! copy — and sticky transitions encode that people do not appear and
//! vanish between 0.5 s windows. Isolated background blips then lose to
//! the transition prior, while sustained presence accumulates evidence.

use serde::{Deserialize, Serialize};

use mpdf_rfmath::stats::{mean, std_dev};

use crate::error::DetectError;

/// A 1-D Gaussian emission model over `log10(score)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Gaussian {
    /// Mean of `log10(score)`.
    pub mean: f64,
    /// Standard deviation (floored to keep likelihoods proper).
    pub std: f64,
}

impl Gaussian {
    /// Log-density at `x` (up to the common constant, which cancels in
    /// posterior ratios but is included for clarity).
    fn log_pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std;
        -0.5 * z * z - self.std.ln() - 0.5 * (2.0 * std::f64::consts::PI).ln()
    }
}

/// Two-state presence smoother.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HmmSmoother {
    /// Emission model of the Absent state.
    pub absent: Gaussian,
    /// Emission model of the Present state.
    pub present: Gaussian,
    /// `P(Absent → Absent)` per window.
    pub stay_absent: f64,
    /// `P(Present → Present)` per window.
    pub stay_present: f64,
    /// Prior probability of Present at the first window.
    pub prior_present: f64,
    /// Cap on the per-window |log-likelihood ratio| (nats). Gaussian
    /// tails are unrealistically thin: without a cap a single outlier
    /// window (one interference burst) overwhelms any transition prior.
    /// With the cap, flipping the state needs `≥ transition-cost / cap`
    /// consecutive windows of evidence.
    pub llr_cap: f64,
}

impl HmmSmoother {
    /// Default separation between the Absent and Present emission means,
    /// in Absent-state standard deviations.
    pub const DEFAULT_SHIFT_SIGMAS: f64 = 3.0;
    /// Default transition stickiness (windows are 0.5 s; humans stay for
    /// many windows).
    pub const DEFAULT_STICKINESS: f64 = 0.9;
    /// Default per-window evidence cap (nats).
    pub const DEFAULT_LLR_CAP: f64 = 2.0;

    /// Fits the Absent emission to calibration null scores and derives
    /// the Present state as a `shift_sigmas`-σ shifted copy.
    ///
    /// Constant null scores (zero sample variance) are fine: the emission
    /// standard deviation is floored at `0.05` decades, so the smoother
    /// stays proper.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] if fewer than two null scores are
    /// given, `shift_sigmas` is not positive, or `stickiness` is outside
    /// `[0.5, 1)`.
    pub fn from_null_scores(
        null_scores: &[f64],
        shift_sigmas: f64,
        stickiness: f64,
    ) -> Result<Self, DetectError> {
        if null_scores.len() < 2 {
            return Err(DetectError::InvalidConfig {
                what: format!(
                    "need at least two null scores to fit the smoother, got {}",
                    null_scores.len()
                ),
            });
        }
        if shift_sigmas <= 0.0 || shift_sigmas.is_nan() {
            return Err(DetectError::InvalidConfig {
                what: format!("shift must be positive, got {shift_sigmas}"),
            });
        }
        if !(0.5..1.0).contains(&stickiness) {
            return Err(DetectError::InvalidConfig {
                what: format!("stickiness must be in [0.5, 1), got {stickiness}"),
            });
        }
        let logs: Vec<f64> = null_scores.iter().map(|&s| log_score(s)).collect();
        let m = mean(&logs);
        let s = std_dev(&logs).max(0.05);
        Ok(HmmSmoother {
            absent: Gaussian { mean: m, std: s },
            present: Gaussian {
                mean: m + shift_sigmas * s,
                std: 1.5 * s,
            },
            stay_absent: stickiness,
            stay_present: stickiness,
            prior_present: 0.1,
            llr_cap: Self::DEFAULT_LLR_CAP,
        })
    }

    /// Capped log-likelihood ratio `ln p(x|Present) − ln p(x|Absent)`.
    fn llr(&self, x: f64) -> f64 {
        (self.present.log_pdf(x) - self.absent.log_pdf(x)).clamp(-self.llr_cap, self.llr_cap)
    }

    /// Convenience constructor with the default shift and stickiness.
    ///
    /// # Errors
    /// [`DetectError::InvalidConfig`] if fewer than two null scores are
    /// given.
    pub fn with_defaults(null_scores: &[f64]) -> Result<Self, DetectError> {
        HmmSmoother::from_null_scores(
            null_scores,
            Self::DEFAULT_SHIFT_SIGMAS,
            Self::DEFAULT_STICKINESS,
        )
    }

    /// One forward-filter step: given the previous posterior
    /// `P(Present | scores[..t])` and the window-`t` score, returns the
    /// updated posterior `P(Present | scores[..=t])`.
    ///
    /// This is the exact loop body of [`HmmSmoother::filter`], exposed so
    /// a long-running session can carry the scalar posterior across
    /// checkpoints with bit-identical arithmetic.
    pub fn step(&self, p_present: f64, score: f64) -> f64 {
        let x = log_score(score);
        // Predict.
        let pred_present =
            p_present * self.stay_present + (1.0 - p_present) * (1.0 - self.stay_absent);
        // Update with the capped likelihood ratio.
        let ratio = self.llr(x).exp();
        let num = pred_present * ratio;
        let den = num + (1.0 - pred_present);
        num / den
    }

    /// Forward-filtered posterior `P(Present | scores[..=t])` per window —
    /// the online (causal) smoother a live deployment would run.
    pub fn filter(&self, scores: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(scores.len());
        let mut p_present = self.prior_present;
        for &s in scores {
            p_present = self.step(p_present, s);
            out.push(p_present);
        }
        out
    }

    /// Viterbi-smoothed presence sequence — the offline (acausal)
    /// maximum-a-posteriori state path.
    pub fn smooth(&self, scores: &[f64]) -> Vec<bool> {
        if scores.is_empty() {
            return Vec::new();
        }
        let n = scores.len();
        let lt = |from_present: bool, to_present: bool| -> f64 {
            let p = match (from_present, to_present) {
                (true, true) => self.stay_present,
                (true, false) => 1.0 - self.stay_present,
                (false, false) => self.stay_absent,
                (false, true) => 1.0 - self.stay_absent,
            };
            p.max(f64::MIN_POSITIVE).ln()
        };
        // delta[state] = best log-prob ending in state; back[t][state].
        let x0 = log_score(scores[0]);
        // Work with the capped LLR split symmetrically: only differences
        // between the two states matter for the MAP path.
        let l0 = self.llr(x0);
        let mut delta = [
            (1.0 - self.prior_present).max(f64::MIN_POSITIVE).ln() - l0 / 2.0,
            self.prior_present.max(f64::MIN_POSITIVE).ln() + l0 / 2.0,
        ];
        let mut back = vec![[false; 2]; n];
        for (t, &s) in scores.iter().enumerate().skip(1) {
            let x = log_score(s);
            let mut next = [f64::NEG_INFINITY; 2];
            let l = self.llr(x);
            for (to, slot) in next.iter_mut().enumerate() {
                let to_present = to == 1;
                let emit = if to_present { l / 2.0 } else { -l / 2.0 };
                let from_absent = delta[0] + lt(false, to_present);
                let from_present = delta[1] + lt(true, to_present);
                if from_present > from_absent {
                    *slot = from_present + emit;
                    back[t][to] = true;
                } else {
                    *slot = from_absent + emit;
                    back[t][to] = false;
                }
            }
            delta = next;
        }
        // Backtrack.
        let mut states = vec![false; n];
        states[n - 1] = delta[1] > delta[0];
        for t in (1..n).rev() {
            states[t - 1] = back[t][states[t] as usize];
        }
        states
    }
}

/// Scores are non-negative; work in a floored log domain.
fn log_score(s: f64) -> f64 {
    s.max(1e-12).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoother() -> HmmSmoother {
        // Null scores around 1.0 (log 0), σ ≈ 0.1 decades.
        let nulls: Vec<f64> = (0..50)
            .map(|i| 1.0 * 10f64.powf(0.1 * ((i % 7) as f64 - 3.0) / 3.0))
            .collect();
        HmmSmoother::with_defaults(&nulls).expect("valid null scores")
    }

    #[test]
    fn fit_matches_null_statistics() {
        let h = smoother();
        assert!(h.absent.mean.abs() < 0.05, "mean {}", h.absent.mean);
        assert!(h.present.mean > h.absent.mean + 0.2);
    }

    #[test]
    fn isolated_blip_is_suppressed() {
        let h = smoother();
        // 12 absent windows with one huge blip in the middle.
        let mut scores = vec![1.0; 12];
        scores[6] = 30.0;
        let states = h.smooth(&scores);
        assert!(
            states.iter().all(|&s| !s),
            "single blip must not flip the MAP path: {states:?}"
        );
        // The causal filter may spike at the blip but must relax after.
        let post = h.filter(&scores);
        assert!(post[11] < 0.3, "posterior must relax, got {}", post[11]);
    }

    #[test]
    fn sustained_presence_is_detected() {
        let h = smoother();
        let mut scores = vec![1.0; 6];
        scores.extend(vec![12.0; 6]);
        scores.extend(vec![1.0; 6]);
        let states = h.smooth(&scores);
        assert!(states[..5].iter().all(|&s| !s), "{states:?}");
        assert!(states[7..11].iter().all(|&s| s), "{states:?}");
        assert!(states[14..].iter().all(|&s| !s), "{states:?}");
        let post = h.filter(&scores);
        assert!(post[10] > 0.9, "posterior during presence: {}", post[10]);
    }

    #[test]
    fn filter_outputs_probabilities() {
        let h = smoother();
        let scores = [0.5, 2.0, 50.0, 0.1, 1.0, 7.0];
        for p in h.filter(&scores) {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn empty_stream_is_fine() {
        let h = smoother();
        assert!(h.smooth(&[]).is_empty());
        assert!(h.filter(&[]).is_empty());
    }

    #[test]
    fn stickiness_controls_blip_tolerance() {
        let nulls = vec![1.0, 1.1, 0.9, 1.05, 0.95];
        let loose = HmmSmoother::from_null_scores(&nulls, 3.0, 0.5).expect("valid");
        let sticky = HmmSmoother::from_null_scores(&nulls, 3.0, 0.95).expect("valid");
        let mut scores = vec![1.0; 9];
        scores[4] = 8.0;
        let loose_states = loose.smooth(&scores);
        let sticky_states = sticky.smooth(&scores);
        // The loose chain follows the blip; the sticky one suppresses it.
        assert!(loose_states[4], "loose chain should follow evidence");
        assert!(!sticky_states[4], "sticky chain should suppress the blip");
    }

    #[test]
    fn too_few_nulls_is_invalid_config() {
        let err = HmmSmoother::with_defaults(&[1.0]).unwrap_err();
        assert!(matches!(err, DetectError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("at least two null scores"));
    }

    #[test]
    fn bad_parameters_are_invalid_config() {
        let nulls = [1.0, 1.1, 0.9];
        for bad in [0.0, -1.0, f64::NAN] {
            let err = HmmSmoother::from_null_scores(&nulls, bad, 0.9).unwrap_err();
            assert!(matches!(err, DetectError::InvalidConfig { .. }), "{err}");
        }
        for bad in [0.49, 1.0, 1.5, f64::NAN] {
            let err = HmmSmoother::from_null_scores(&nulls, 3.0, bad).unwrap_err();
            assert!(matches!(err, DetectError::InvalidConfig { .. }), "{err}");
        }
    }

    #[test]
    fn step_matches_filter_exactly() {
        let h = smoother();
        let scores = [0.5, 2.0, 50.0, 0.1, 1.0, 7.0];
        let filtered = h.filter(&scores);
        let mut p = h.prior_present;
        for (i, &s) in scores.iter().enumerate() {
            p = h.step(p, s);
            assert_eq!(p.to_bits(), filtered[i].to_bits(), "window {i}");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Constant null scores have zero sample variance; the 0.05
            /// std floor must still yield a usable (finite, proper)
            /// smoother whose filter emits probabilities.
            #[test]
            fn constant_nulls_yield_usable_smoother(
                level in 1e-9f64..1e6,
                n in 2usize..40,
            ) {
                let nulls = vec![level; n];
                let h = HmmSmoother::with_defaults(&nulls).expect("floored std");
                prop_assert!(h.absent.std >= 0.05);
                prop_assert!(h.absent.mean.is_finite());
                prop_assert!(h.present.mean.is_finite());
                let post = h.filter(&[level, level * 10.0, level]);
                for p in post {
                    prop_assert!((0.0..=1.0).contains(&p), "posterior {p}");
                }
            }
        }
    }
}
