//! # mpdf-core — multipath link characterization and adaptation
//!
//! The primary contribution of *"On Multipath Link Characterization and
//! Adaptation for Device-free Human Detection"* (Zhou et al., ICDCS 2015):
//!
//! - [`linkmodel`] — the analytic one-bounce link model (Eq. 2–8).
//! - [`multipath_factor`] — the measurable per-subcarrier proxy `μ_k`
//!   for detection sensitivity (Eq. 9–11).
//! - [`subcarrier_weight`] — frequency-diversity weighting (Eq. 12–15).
//! - [`path_weight`] — spatial-diversity weighting of the MUSIC
//!   pseudospectrum (Eq. 17).
//! - [`profile`], [`scheme`], [`threshold`], [`detector`] — the
//!   calibrate/monitor pipeline with the three evaluated schemes.
//! - [`degrade`] — graceful degradation of fault-impaired windows
//!   (quarantine, gap budgets, reduced-aperture fallback).
//! - [`fade_level`], [`variance`] — related-work comparator and the
//!   mobile-target variance feature.
//! - [`hmm`] — the paper's §V-B1 future-work extension: hidden-Markov
//!   smoothing of the decision stream against magnified background
//!   dynamics.
//!
//! ```
//! use mpdf_core::linkmodel::TwoPathLink;
//!
//! // Destructive superposition ⇒ multipath factor above 1 ⇒ the
//! // subcarrier is extra sensitive to human shadowing.
//! let link = TwoPathLink::new(2.0, std::f64::consts::PI);
//! assert!(link.multipath_factor() > 1.0);
//! assert!(link.shadow_sensitivity_db(0.5).abs() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod degrade;
pub mod detector;
pub mod error;
pub mod fade_level;
pub mod hmm;
pub mod linkmodel;
pub mod multipath_factor;
pub mod path_weight;
pub mod profile;
pub mod scheme;
pub mod subcarrier_weight;
pub mod threshold;
pub mod variance;

pub use degrade::{assess_window, WindowHealth};
pub use detector::{Decision, Detector};
pub use error::DetectError;
pub use hmm::HmmSmoother;
pub use multipath_factor::multipath_factors;
pub use path_weight::PathWeights;
pub use profile::{CalibrationProfile, DetectorConfig};
pub use scheme::{
    Baseline, DetectionScheme, RssiBaseline, SubcarrierAndPathWeighting, SubcarrierWeighting,
};
pub use subcarrier_weight::SubcarrierWeights;
