//! The end-to-end detector: calibrate → monitor → decide (§IV-C).

use serde::{Deserialize, Serialize};

use mpdf_wifi::csi::CsiPacket;

use crate::error::DetectError;
use crate::profile::{CalibrationProfile, DetectorConfig};
use crate::scheme::DetectionScheme;
use crate::threshold::{static_score_distribution, threshold_for_fp};

/// One monitoring decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Decision {
    /// The window's anomaly score.
    pub score: f64,
    /// The threshold in effect.
    pub threshold: f64,
    /// `score > threshold`.
    pub detected: bool,
    /// The window was scored under graceful degradation (packets lost,
    /// rejected, antenna-reduced or clipped) — trust accordingly.
    #[serde(default)]
    pub degraded: bool,
}

/// A calibrated device-free human detector.
#[derive(Debug, Clone)]
pub struct Detector<S> {
    profile: CalibrationProfile,
    scheme: S,
    config: DetectorConfig,
    threshold: f64,
}

impl<S: DetectionScheme> Detector<S> {
    /// Calibrates a detector from no-human packets.
    ///
    /// The first half of `calibration_packets` builds the profile; the
    /// second half is held out to estimate the null-score distribution
    /// from which the threshold at `target_fp` is drawn.
    ///
    /// # Errors
    /// [`DetectError::InsufficientCalibration`] when the held-out half is
    /// shorter than one window, plus profile/scheme errors.
    ///
    /// # Panics
    /// Panics if `target_fp` is outside `(0, 1)`.
    pub fn calibrate(
        calibration_packets: &[CsiPacket],
        scheme: S,
        config: DetectorConfig,
        target_fp: f64,
    ) -> Result<Self, DetectError> {
        let half = calibration_packets.len() / 2;
        if half == 0 || calibration_packets.len() - half < config.window {
            return Err(DetectError::InsufficientCalibration {
                got: calibration_packets.len(),
                need: 2 * config.window,
            });
        }
        let (train, holdout) = calibration_packets.split_at(half);
        let profile = CalibrationProfile::build(train, &config)?;
        let null_scores = static_score_distribution(&profile, holdout, &scheme, &config)?;
        let threshold = threshold_for_fp(&null_scores, target_fp);
        Ok(Detector {
            profile,
            scheme,
            config,
            threshold,
        })
    }

    /// Builds a detector from a pre-computed profile and explicit
    /// threshold (used by the ROC experiments, which sweep thresholds).
    pub fn from_parts(
        profile: CalibrationProfile,
        scheme: S,
        config: DetectorConfig,
        threshold: f64,
    ) -> Self {
        Detector {
            profile,
            scheme,
            config,
            threshold,
        }
    }

    /// The calibration profile.
    pub fn profile(&self) -> &CalibrationProfile {
        &self.profile
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.config
    }

    /// The decision threshold in effect.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Overrides the threshold (ROC sweeps).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// Scores one monitoring window without thresholding.
    ///
    /// # Errors
    /// Propagates scheme errors.
    pub fn score(&self, window: &[CsiPacket]) -> Result<f64, DetectError> {
        self.scheme.score(&self.profile, window, &self.config)
    }

    /// Scores and thresholds one monitoring window.
    ///
    /// # Errors
    /// Propagates scheme errors.
    pub fn decide(&self, window: &[CsiPacket]) -> Result<Decision, DetectError> {
        let (score, health) = self
            .scheme
            .score_with_health(&self.profile, window, &self.config)?;
        let detected = score > self.threshold;
        mpdf_obs::counter!("core.decisions_total").inc();
        if detected {
            mpdf_obs::counter!("core.detections_total").inc();
        }
        Ok(Decision {
            score,
            threshold: self.threshold,
            detected,
            degraded: health.degraded,
        })
    }

    /// Streams decisions over consecutive non-overlapping windows of a
    /// packet capture.
    ///
    /// Contract: only full windows of `config.window` packets are scored.
    /// A trailing partial window (fewer than `config.window` packets left
    /// at the end of the capture) is **dropped, not scored** — a partial
    /// window would see a different noise floor than the threshold was
    /// calibrated for. Each drop is counted on
    /// `core.partial_windows_dropped_total`, and every decision that went
    /// through the graceful-degradation path is counted on
    /// `core.stream_degraded_decisions_total`, so a stream consumer can
    /// audit both losses without re-deriving them.
    ///
    /// # Errors
    /// Propagates scheme errors.
    pub fn decide_stream(&self, packets: &[CsiPacket]) -> Result<Vec<Decision>, DetectError> {
        let chunks = packets.chunks_exact(self.config.window);
        if !chunks.remainder().is_empty() {
            mpdf_obs::counter!("core.partial_windows_dropped_total").inc();
        }
        let decisions: Vec<Decision> = chunks.map(|w| self.decide(w)).collect::<Result<_, _>>()?;
        let degraded = decisions.iter().filter(|d| d.degraded).count();
        if degraded > 0 {
            mpdf_obs::counter!("core.stream_degraded_decisions_total").add(degraded as u64);
        }
        Ok(decisions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{Baseline, SubcarrierWeighting};
    use mpdf_rfmath::complex::Complex64;

    /// Static packets with mild deterministic jitter; `bump > 0` injects a
    /// disturbance.
    fn packets(n: usize, bump: f64, offset: u64) -> Vec<CsiPacket> {
        (0..n)
            .map(|i| {
                let ii = i as u64 + offset;
                let data: Vec<Complex64> = (0..90)
                    .map(|j| {
                        let jitter = 0.005 * ((ii * 31 + j as u64) as f64).sin();
                        Complex64::from_polar(1.0 + jitter + bump, 0.01 * j as f64)
                    })
                    .collect();
                CsiPacket::new(3, 30, data, ii, ii as f64 * 0.02)
            })
            .collect()
    }

    #[test]
    fn calibrate_and_detect() {
        let cfg = DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        };
        let det = Detector::calibrate(&packets(80, 0.0, 0), Baseline, cfg, 0.1).unwrap();
        // Static window: no detection.
        let calm = det.decide(&packets(10, 0.0, 1000)).unwrap();
        assert!(
            !calm.detected,
            "static score {} thr {}",
            calm.score, calm.threshold
        );
        // Perturbed window: detection.
        let busy = det.decide(&packets(10, 0.2, 2000)).unwrap();
        assert!(
            busy.detected,
            "busy score {} thr {}",
            busy.score, busy.threshold
        );
        assert!(busy.score > calm.score);
    }

    #[test]
    fn insufficient_calibration_is_rejected() {
        let cfg = DetectorConfig {
            window: 25,
            ..DetectorConfig::default()
        };
        let err = Detector::calibrate(&packets(30, 0.0, 0), Baseline, cfg, 0.1).unwrap_err();
        assert!(matches!(err, DetectError::InsufficientCalibration { .. }));
    }

    #[test]
    fn decide_stream_chunks_correctly() {
        let cfg = DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        };
        let det = Detector::calibrate(&packets(60, 0.0, 0), Baseline, cfg, 0.1).unwrap();
        let dropped = mpdf_obs::metrics::counter("core.partial_windows_dropped_total");
        let before = dropped.get();
        let decisions = det.decide_stream(&packets(35, 0.0, 500)).unwrap();
        assert_eq!(decisions.len(), 3);
        // The 5-packet trailing remainder is dropped *and counted*.
        assert!(dropped.get() > before, "partial-window drop not counted");
        let exact = det.decide_stream(&packets(30, 0.0, 500)).unwrap();
        assert_eq!(exact.len(), 3);
    }

    #[test]
    fn threshold_override() {
        let cfg = DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        };
        let mut det =
            Detector::calibrate(&packets(60, 0.0, 0), SubcarrierWeighting, cfg, 0.1).unwrap();
        det.set_threshold(0.0);
        // With a zero threshold any jitter fires.
        let d = det.decide(&packets(10, 0.0, 900)).unwrap();
        assert!(d.detected);
        det.set_threshold(f64::INFINITY);
        let d = det.decide(&packets(10, 10.0, 900)).unwrap();
        assert!(!d.detected);
    }

    #[test]
    fn from_parts_roundtrip() {
        let cfg = DetectorConfig {
            window: 10,
            ..DetectorConfig::default()
        };
        let profile =
            crate::profile::CalibrationProfile::build(&packets(20, 0.0, 0), &cfg).unwrap();
        let det = Detector::from_parts(profile, Baseline, cfg, 1.23);
        assert_eq!(det.threshold(), 1.23);
        assert_eq!(det.config().window, 10);
    }
}
