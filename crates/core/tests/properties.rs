//! Property-based tests for the detection core.

use mpdf_core::linkmodel::TwoPathLink;
use mpdf_core::multipath_factor::{los_power_split, multipath_factors_row};
use mpdf_core::path_weight::PathWeights;
use mpdf_core::subcarrier_weight::{single_packet_weights, SubcarrierWeights};
use mpdf_music::music::Pseudospectrum;
use mpdf_rfmath::complex::Complex64;
use mpdf_wifi::band::Band;
use proptest::prelude::*;

fn mu_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 30), 1..32)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- Analytic link model ----

    #[test]
    fn eq3_eq5_eq6_consistency(gamma in 1.05f64..10.0, phi in -3.0f64..3.0, beta in 0.05f64..0.95) {
        let link = TwoPathLink::new(gamma, phi);
        let mu = link.multipath_factor();
        prop_assert!(mu > 0.0 && mu.is_finite());
        let via_phi = link.shadow_sensitivity_db(beta);
        let via_mu = link.shadow_sensitivity_from_mu_db(beta, mu);
        // Eq. 6 is an exact rewrite of Eq. 5 (away from total cancellation).
        prop_assume!(via_phi.is_finite() && via_phi > -60.0);
        prop_assert!((via_phi - via_mu).abs() < 1e-6, "{via_phi} vs {via_mu}");
    }

    #[test]
    fn shadow_sensitivity_recovers_los_only_at_large_gamma(beta in 0.1f64..0.9, phi in -3.0f64..3.0) {
        // γ → ∞ means no reflection: Δs → 20·lg β.
        let link = TwoPathLink::new(1e6, phi);
        let ds = link.shadow_sensitivity_db(beta);
        let los = mpdf_core::linkmodel::los_only_shadow_db(beta);
        prop_assert!((ds - los).abs() < 1e-3, "{ds} vs {los}");
    }

    #[test]
    fn reflection_sensitivity_is_zero_without_new_path(gamma in 1.05f64..10.0, phi in -3.0f64..3.0, phip in -3.0f64..3.0) {
        let link = TwoPathLink::new(gamma, phi);
        prop_assert!(link.reflection_sensitivity_db(0.0, phip).abs() < 1e-12);
    }

    // ---- Multipath factor ----

    #[test]
    fn los_split_sums_to_k_times_input(p in 0.001f64..100.0) {
        let freqs = Band::wifi_2_4ghz_channel11().frequencies();
        let split = los_power_split(p, &freqs);
        let sum: f64 = split.iter().sum();
        prop_assert!((sum - 30.0 * p).abs() < 1e-6 * sum);
        prop_assert!(split.windows(2).all(|w| w[0] > w[1]), "f⁻² must decrease");
    }

    #[test]
    fn mu_row_is_nonnegative_and_scale_free(
        amps in proptest::collection::vec(0.01f64..3.0, 30),
        phases in proptest::collection::vec(-3.1f64..3.1, 30),
        scale in 0.1f64..50.0,
    ) {
        let freqs = Band::wifi_2_4ghz_channel11().frequencies();
        let row: Vec<Complex64> = amps
            .iter()
            .zip(&phases)
            .map(|(&a, &p)| Complex64::from_polar(a, p))
            .collect();
        let scaled: Vec<Complex64> = row.iter().map(|&z| z * scale).collect();
        let m1 = multipath_factors_row(&row, &freqs);
        let m2 = multipath_factors_row(&scaled, &freqs);
        for (a, b) in m1.iter().zip(&m2) {
            prop_assert!(*a >= 0.0 && a.is_finite());
            prop_assert!((a - b).abs() < 1e-6 * a.max(1.0));
        }
    }

    // ---- Subcarrier weighting ----

    #[test]
    fn single_packet_weights_sum_to_one(mus in proptest::collection::vec(0.0f64..10.0, 1..64)) {
        let w = single_packet_weights(&mus);
        prop_assert_eq!(w.len(), mus.len());
        let sum: f64 = w.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        prop_assert!(w.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn combined_weights_are_valid(rows in mu_rows()) {
        let w = SubcarrierWeights::from_factors(&rows);
        prop_assert_eq!(w.weights.len(), 30);
        prop_assert!(w.weights.iter().all(|&x| x.is_finite() && x >= 0.0));
        prop_assert!(w.stability.iter().all(|&r| (0.0..=1.0).contains(&r)));
        prop_assert!(w.mean_mu.iter().all(|&m| m >= 0.0));
        // Applying to a zero Δs gives zero.
        let zero = vec![0.0; 30];
        prop_assert!(w.apply(&zero).iter().all(|&d| d == 0.0));
        // Homogeneity: apply(c·Δs) = c·apply(Δs).
        let ds: Vec<f64> = (0..30).map(|i| (i as f64 - 15.0) * 0.3).collect();
        let a = w.apply(&ds);
        let scaled: Vec<f64> = ds.iter().map(|d| d * 2.5).collect();
        let b = w.apply(&scaled);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((2.5 * x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn stability_ratio_reflects_exceedance(rows in mu_rows()) {
        // r_k computed directly must match the struct's.
        let w = SubcarrierWeights::from_factors(&rows);
        for k in 0..30 {
            let count = rows
                .iter()
                .filter(|mus| {
                    let med = mpdf_rfmath::stats::median(mus);
                    mus[k] > med
                })
                .count();
            let expect = count as f64 / rows.len() as f64;
            prop_assert!((w.stability[k] - expect).abs() < 1e-12);
        }
    }

    // ---- Path weighting ----

    #[test]
    fn path_weights_are_gated_and_capped(
        values in proptest::collection::vec(0.001f64..10.0, 181),
        lo in -80.0f64..-10.0,
        hi in 10.0f64..80.0,
    ) {
        let angles: Vec<f64> = (-90..=90).map(|a| a as f64).collect();
        let spec = Pseudospectrum::new(angles.clone(), values);
        let w = PathWeights::with_gate_and_cap(&spec, lo, hi, 25.0);
        for (&a, &wt) in angles.iter().zip(w.weights()) {
            if a <= lo || a >= hi {
                prop_assert_eq!(wt, 0.0);
            } else {
                prop_assert!(wt > 0.0 && wt <= 25.0 + 1e-12);
            }
        }
        // Weight ordering is inverse to the (normalized) spectrum inside
        // the gate, up to the cap.
        let norm = spec.normalized();
        for i in 0..angles.len() {
            for j in 0..angles.len() {
                let (wi, wj) = (w.weights()[i], w.weights()[j]);
                if wi > 0.0 && wj > 0.0 && wi < 25.0 - 1e-9 && wj < 25.0 - 1e-9 {
                    let (vi, vj) = (norm.values()[i], norm.values()[j]);
                    if vi < vj {
                        prop_assert!(wi >= wj - 1e-9);
                    }
                }
            }
        }
    }
}
