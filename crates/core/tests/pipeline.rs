//! End-to-end pipeline test: physics → CSI capture → calibration →
//! detection, exercising all three schemes on the paper's classroom
//! geometry.

use mpdf_core::detector::Detector;
use mpdf_core::profile::DetectorConfig;
use mpdf_core::scheme::{
    Baseline, DetectionScheme, SubcarrierAndPathWeighting, SubcarrierWeighting,
};
use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::environment::Environment;
use mpdf_propagation::human::HumanBody;
use mpdf_wifi::receiver::CsiReceiver;

fn classroom_link() -> ChannelModel {
    let env = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
    ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap()
}

fn run_scheme<S: DetectionScheme>(scheme: S, seed: u64) -> (f64, f64) {
    let mut rx = CsiReceiver::new(classroom_link(), seed).unwrap();
    let cfg = DetectorConfig::default();
    let calibration = rx.capture_static(None, 300).unwrap();
    let det = Detector::calibrate(&calibration, scheme, cfg, 0.1).unwrap();

    // Human presence windows on a grid near the link.
    let mut tp = 0;
    let mut total_p = 0;
    for ix in 0..4 {
        for iy in 0..3 {
            let pos = Vec2::new(2.5 + ix as f64, 2.0 + iy as f64);
            let body = HumanBody::new(pos);
            let window = rx.capture_static(Some(&body), 25).unwrap();
            if det.decide(&window).unwrap().detected {
                tp += 1;
            }
            total_p += 1;
        }
    }
    // Empty windows.
    let mut fp = 0;
    let mut total_n = 0;
    for _ in 0..12 {
        let window = rx.capture_static(None, 25).unwrap();
        if det.decide(&window).unwrap().detected {
            fp += 1;
        }
        total_n += 1;
    }
    (tp as f64 / total_p as f64, fp as f64 / total_n as f64)
}

#[test]
fn baseline_detects_better_than_chance() {
    let (tp, fp) = run_scheme(Baseline, 11);
    assert!(tp > 0.3, "baseline TP {tp}");
    assert!(fp < 0.6, "baseline FP {fp}");
}

#[test]
fn subcarrier_weighting_detects_well() {
    let (tp, fp) = run_scheme(SubcarrierWeighting, 11);
    assert!(tp > 0.5, "subcarrier TP {tp}");
    assert!(fp < 0.5, "subcarrier FP {fp}");
}

#[test]
fn combined_weighting_detects_well() {
    let (tp, fp) = run_scheme(SubcarrierAndPathWeighting, 11);
    assert!(tp > 0.5, "combined TP {tp}");
    assert!(fp < 0.5, "combined FP {fp}");
}
