//! Cross-validation: the ray-tracing simulator against the paper's
//! analytic one-bounce link model (Eq. 2–8).
//!
//! A link is staged so that exactly two paths survive — the LOS and one
//! wall bounce — then the simulator's ground-truth LOS power fraction and
//! its shadowing response are compared against `TwoPathLink`'s closed
//! forms, with `γ` and `φ` computed from the traced geometry. If the
//! physics layer and the analysis layer ever drift apart, this test
//! fails.

use mpdf_core::linkmodel::TwoPathLink;
use mpdf_geom::shapes::Rect;
use mpdf_geom::vec2::Vec2;
use mpdf_propagation::channel::ChannelModel;
use mpdf_propagation::environment::Environment;
use mpdf_propagation::human::HumanBody;
use mpdf_propagation::path::PathKind;
use mpdf_propagation::tracer::TraceConfig;
use mpdf_propagation::SPEED_OF_LIGHT;

/// An anechoic stage: absorber boundary walls (Γ = 0, pruned by the
/// amplitude filter) plus one reflective interior wall below the link —
/// exactly the LOS + single bounce of the paper's §III-B analysis.
fn two_path_link() -> ChannelModel {
    let absorber = mpdf_propagation::Material::new("absorber", 0.0, 0.0);
    let mut b = Environment::builder(Rect::new(Vec2::ZERO, Vec2::new(40.0, 20.0)), absorber);
    b.interior_wall(
        mpdf_geom::segment::Segment::new(Vec2::new(0.0, 0.1), Vec2::new(40.0, 0.1)),
        mpdf_propagation::Material::CONCRETE,
    );
    ChannelModel::new(b.build(), Vec2::new(18.0, 2.0), Vec2::new(22.0, 2.0))
        .unwrap()
        .with_trace_config(TraceConfig {
            max_order: 1,
            min_amplitude_factor: 0.05,
        })
        .unwrap()
}

/// Extracts `(γ, Δd)` from the traced path set, asserting the two-path
/// premise.
fn gamma_and_excess(model: &ChannelModel) -> (f64, f64) {
    let snap = model.snapshot(None).unwrap();
    let paths = snap.paths();
    assert_eq!(
        paths.len(),
        2,
        "stage must have exactly LOS + one bounce, got {:?}",
        paths
            .iter()
            .map(|p| (p.kind(), p.length()))
            .collect::<Vec<_>>()
    );
    assert_eq!(paths[0].kind(), PathKind::LineOfSight);
    let f = 2.462e9;
    let a_l = paths[0].gain(f, model.pathloss()).norm();
    let a_r = paths[1].gain(f, model.pathloss()).norm();
    (a_l / a_r, paths[1].length() - paths[0].length())
}

#[test]
fn simulator_matches_eq3_multipath_factor() {
    let model = two_path_link();
    let (gamma, excess) = gamma_and_excess(&model);
    assert!(gamma > 1.0, "LOS must dominate, γ = {gamma}");
    let snap = model.snapshot(None).unwrap();
    for i in 0..16 {
        let f = 2.452e9 + i as f64 * 1.25e6;
        let phi = 2.0 * std::f64::consts::PI * f * excess / SPEED_OF_LIGHT;
        // γ varies (negligibly) with f through the path-loss law; the
        // centre-frequency value is accurate to ~1e-4 across the band.
        let theory = TwoPathLink::new(gamma, phi).multipath_factor();
        let simulated = snap.true_multipath_factor(f).unwrap();
        assert!(
            (theory - simulated).abs() < 1e-3 * theory.max(1.0),
            "f = {f}: theory μ {theory} vs simulator μ {simulated}"
        );
    }
}

#[test]
fn simulator_matches_eq5_shadowing_response() {
    let model = two_path_link();
    let (gamma, excess) = gamma_and_excess(&model);
    let calm = model.snapshot(None).unwrap();

    // A pure absorber on the LOS midpoint: reflectivity 0 disables the
    // Eq. 7 scatter term the Eq. 5 analysis does not include, and the
    // bounce legs pass well below the body.
    let beta = 0.35;
    let body = HumanBody::with_params(Vec2::new(20.0, 2.0), 0.2, 0.0, beta);
    let busy = model.snapshot(Some(&body)).unwrap();
    // Confirm the bounce path is untouched.
    assert!(
        (busy.paths()[1].amplitude_factor() - calm.paths()[1].amplitude_factor()).abs() < 1e-12,
        "bounce path must not be shadowed in this stage"
    );

    for i in 0..16 {
        let f = 2.452e9 + i as f64 * 1.25e6;
        let phi = 2.0 * std::f64::consts::PI * f * excess / SPEED_OF_LIGHT;
        let theory = TwoPathLink::new(gamma, phi).shadow_sensitivity_db(beta);
        let simulated = 10.0 * (busy.power(f) / calm.power(f)).log10();
        assert!(
            (theory - simulated).abs() < 0.05,
            "f = {f}: theory Δs {theory:.4} dB vs simulator {simulated:.4} dB"
        );
    }
}

#[test]
fn simulator_matches_eq8_reflection_response() {
    // Now the opposite stage: a body *beside* the link that only adds a
    // scatter path (shadowing nothing), compared against Eq. 8.
    let model = two_path_link();
    let (gamma, excess) = gamma_and_excess(&model);
    let calm = model.snapshot(None).unwrap();

    // Body 1.5 m above the link: clear of both existing paths.
    let body = HumanBody::with_params(Vec2::new(20.0, 3.5), 0.2, 0.38, 0.35);
    let busy = model.snapshot(Some(&body)).unwrap();
    assert_eq!(busy.paths().len(), 3, "scatter path must be added");
    let scatter = busy
        .paths()
        .iter()
        .find(|p| p.kind() == PathKind::HumanScatter)
        .unwrap();

    for i in 0..8 {
        let f = 2.452e9 + i as f64 * 2.5e6;
        let a_l = calm.paths()[0].gain(f, model.pathloss()).norm();
        let a_r = calm.paths()[1].gain(f, model.pathloss()).norm();
        let a_h = scatter.gain(f, model.pathloss()).norm();
        let phi = 2.0 * std::f64::consts::PI * f * excess / SPEED_OF_LIGHT;
        let phi_h = 2.0 * std::f64::consts::PI * f * (scatter.length() - calm.paths()[0].length())
            / SPEED_OF_LIGHT;
        // Eq. 8 parameters: η = a'_R/a_R relative to the *existing*
        // reflection, φ' relative to the LOS.
        let eta = a_h / a_r;
        let link = TwoPathLink::new(a_l / a_r, phi);
        let theory = link.reflection_sensitivity_db(eta, phi_h);
        let simulated = 10.0 * (busy.power(f) / calm.power(f)).log10();
        assert!(
            (theory - simulated).abs() < 0.05,
            "f = {f}: theory Δs {theory:.4} dB vs simulator {simulated:.4} dB (γ={gamma:.2})"
        );
    }
}
