//! Offline stand-in for `criterion` 0.5.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal API-compatible subset of its external dependencies (see
//! `vendor/README.md`). This crate supports the harness surface the
//! `mpdf-bench` benches use — [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, `iter`, [`criterion_group!`] /
//! [`criterion_main!`] — and reports a simple mean wall-clock time per
//! iteration instead of criterion's full statistical analysis.
//!
//! Beyond the console lines, every run also writes a machine-readable
//! `BENCH_<harness>.json` (e.g. `BENCH_micro.json` for the `micro`
//! bench target) into the working directory: a JSON array of
//! `{name, mean_ns_per_iter, samples, threads}` records, one per
//! benchmark, for CI artifacts and regression tracking. Set
//! `MPDF_BENCH_SAMPLES` to override every group's sample count (CI quick
//! mode uses a small value to bound runtime).

#![forbid(unsafe_code)]

use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// One finished benchmark, as recorded for the JSON report.
#[derive(Debug, Clone)]
struct Record {
    name: String,
    mean_ns_per_iter: f64,
    samples: usize,
}

fn records() -> &'static Mutex<Vec<Record>> {
    static RECORDS: OnceLock<Mutex<Vec<Record>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Sample-count override from `MPDF_BENCH_SAMPLES`, if set and valid.
fn sample_override() -> Option<usize> {
    std::env::var("MPDF_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
}

fn effective_samples(requested: usize) -> usize {
    sample_override().unwrap_or(requested).max(1)
}

/// Benchmark harness entry point (stand-in for `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
        };
        group.bench_function(id, f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples to record per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f`, prints a mean per-iteration wall-clock estimate and
    /// records it for the JSON report.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = effective_samples(self.sample_size);
        let mut bencher = Bencher {
            iterations: 0,
            elapsed_ns: 0,
        };
        for _ in 0..samples {
            f(&mut bencher);
        }
        let mean = if bencher.iterations == 0 {
            0.0
        } else {
            bencher.elapsed_ns as f64 / bencher.iterations as f64
        };
        println!("  {id}: {:.0} ns/iter ({} iters)", mean, bencher.iterations);
        let full_name = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{id}", self.name)
        };
        records()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(Record {
                name: full_name,
                mean_ns_per_iter: mean,
                samples,
            });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u128,
    elapsed_ns: u128,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.elapsed_ns += start.elapsed().as_nanos().max(1);
        self.iterations += 1;
        drop(out);
    }
}

/// Re-export point so `use criterion::black_box` keeps working.
pub use std::hint::black_box;

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Derives the report stem from the harness executable name: cargo
/// builds bench targets as `<name>-<metadata hash>`, so strip a trailing
/// `-<hex>` suffix when one is present.
fn harness_stem() -> String {
    let exe = std::env::args().next().unwrap_or_default();
    let file = std::path::Path::new(&exe)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("bench")
        .to_string();
    match file.rsplit_once('-') {
        Some((stem, hash))
            if !stem.is_empty()
                && hash.len() >= 8
                && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
        {
            stem.to_string()
        }
        _ => file,
    }
}

/// Serializes the accumulated records as a JSON array.
fn render_report(recs: &[Record], threads: usize) -> String {
    let mut out = String::from("[\n");
    for (i, r) in recs.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"name\": \"{}\", \"mean_ns_per_iter\": {:.3}, \"samples\": {}, \"threads\": {}}}{}\n",
            json_escape(&r.name),
            r.mean_ns_per_iter,
            r.samples,
            threads,
            if i + 1 < recs.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}

/// Writes `BENCH_<harness>.json` with every benchmark recorded so far.
/// Called automatically by the `criterion_main!`-generated `main`.
///
/// The report lands in the working directory (the benched package's
/// root under `cargo bench`); set `MPDF_BENCH_OUT` to redirect it to
/// another directory, e.g. the workspace root in CI.
pub fn write_report() {
    let recs = records()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    if recs.is_empty() {
        return;
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let file = format!("BENCH_{}.json", harness_stem());
    let path = match std::env::var("MPDF_BENCH_OUT") {
        Ok(dir) if !dir.is_empty() => std::path::Path::new(&dir).join(&file),
        _ => std::path::PathBuf::from(&file),
    };
    match std::fs::write(&path, render_report(&recs, threads)) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Benchmark group entry point generated by `criterion_group!`.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `fn main` running the listed groups, then writing the
/// machine-readable `BENCH_<harness>.json` report.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_report();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn bench_results_are_recorded_with_group_prefix() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("recgroup");
        g.sample_size(2);
        g.bench_function("recorded", |b| b.iter(|| 1 + 1));
        g.finish();
        let recs = records().lock().unwrap();
        let r = recs
            .iter()
            .find(|r| r.name == "recgroup/recorded")
            .expect("record present");
        assert_eq!(r.samples, 2);
        assert!(r.mean_ns_per_iter > 0.0);
    }

    #[test]
    fn report_renders_valid_shape() {
        let recs = vec![
            Record {
                name: "g/a".into(),
                mean_ns_per_iter: 12.5,
                samples: 10,
            },
            Record {
                name: "g/b\"q".into(),
                mean_ns_per_iter: 3.0,
                samples: 5,
            },
        ];
        let json = render_report(&recs, 4);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"name\": \"g/a\""));
        assert!(json.contains("\"mean_ns_per_iter\": 12.500"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("g/b\\\"q"));
        // One comma: two records.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn harness_stem_strips_cargo_hash() {
        // Can't fake argv here, but the splitting logic is observable
        // through representative names.
        fn split(name: &str) -> String {
            match name.rsplit_once('-') {
                Some((stem, hash))
                    if !stem.is_empty()
                        && hash.len() >= 8
                        && hash.chars().all(|c| c.is_ascii_hexdigit()) =>
                {
                    stem.to_string()
                }
                _ => name.to_string(),
            }
        }
        assert_eq!(split("micro-0c5936224fe3b496"), "micro");
        assert_eq!(split("figures-deadbeef01234567"), "figures");
        assert_eq!(split("micro"), "micro");
        assert_eq!(split("ext-sweep"), "ext-sweep");
    }
}
