//! Offline stand-in for `serde_derive`.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! a minimal API-compatible subset of its external dependencies (see
//! `vendor/README.md`). Nothing in this repository serializes data through
//! serde at runtime — the derives exist so public types advertise the
//! serde contract — so the derive macros here validate nothing and emit an
//! empty token stream. The matching `vendor/serde` crate provides blanket
//! trait impls, which keeps `T: Serialize` bounds satisfied.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` helper
/// attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
