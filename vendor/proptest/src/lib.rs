//! Offline stand-in for `proptest` 1.x.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal API-compatible subset of its external dependencies (see
//! `vendor/README.md`). This crate implements the slice of proptest the
//! workspace's property tests use:
//!
//! - [`strategy::Strategy`] with `prop_map`, implemented for numeric
//!   ranges, tuples (arity 2–6), [`strategy::Just`] and mapped strategies;
//! - [`collection::vec`] with [`collection::SizeRange`];
//! - the [`proptest!`] macro with optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Differences from the real crate: cases are drawn from a fixed
//! deterministic seed derived from the test name (fully reproducible
//! runs), there is no shrinking, and `.proptest-regressions` files are
//! not consulted. Failures report the case index and the failed
//! assertion.

#![forbid(unsafe_code)]

/// Test-case execution: config, RNG, errors and the runner loop.
pub mod test_runner {
    /// Deterministic RNG handed to strategies (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG from a seed.
        #[must_use]
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform sample in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn next_below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "next_below requires a positive bound");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case was vetoed by `prop_assume!` — draw a fresh one.
        Reject(String),
        /// A `prop_assert!` failed — the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure error.
        #[must_use]
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Builds a rejection error.
        #[must_use]
        pub fn reject(msg: &str) -> Self {
            TestCaseError::Reject(msg.to_owned())
        }
    }

    /// Runner configuration (stand-in for `proptest::test_runner::Config`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases required for the property to pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    fn fnv1a(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: draws cases until `config.cases` are accepted,
    /// skipping `prop_assume!` rejections (with a runaway cap) and
    /// panicking on the first failing case.
    ///
    /// # Panics
    /// Panics when a case fails or when rejections exceed the cap.
    pub fn run_named<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let mut accepted: u32 = 0;
        let mut rejected: u64 = 0;
        let mut draw: u64 = 0;
        let max_rejects = u64::from(config.cases) * 64 + 1024;
        while accepted < config.cases {
            let mut rng = TestRng::new(base.wrapping_add(draw.wrapping_mul(0xA076_1D64_78BD_642F)));
            draw += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "property `{name}`: too many prop_assume! rejections ({rejected})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed at case #{accepted} (draw {draw}): {msg}")
                }
            }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// Every `&Strategy` is itself a strategy (proptest parity).
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range strategy");
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (a, b) = (*self.start(), *self.end());
            assert!(a <= b, "empty f64 range strategy");
            a + rng.next_unit_f64() * (b - a)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u128) - (self.start as u128);
                    let off = (u128::from(rng.next_u64()) % span) as $t;
                    self.start + off
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (a, b) = (*self.start(), *self.end());
                    assert!(a <= b, "empty integer range strategy");
                    let span = (b as u128) - (a as u128) + 1;
                    let off = (u128::from(rng.next_u64()) % span) as $t;
                    a + off
                }
            }
        )+};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty as $wide:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (<$wide>::from(self.end) - <$wide>::from(self.start)) as u64;
                    let off = rng.next_u64() % span;
                    (<$wide>::from(self.start) + off as $wide) as $t
                }
            }
        )+};
    }

    signed_range_strategy!(i8 as i64, i16 as i64, i32 as i64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, G);
}

/// Collection strategies (`proptest::collection` subset).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec`]: `[min, max]` inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl SizeRange {
        /// Draws a length from the range.
        fn pick(self, rng: &mut TestRng) -> usize {
            self.min + rng.next_below(self.max - self.min + 1)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection::SizeRange;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Mirrors `proptest::proptest!` for the
/// `fn name(arg in strategy, ...) { body }` form with an optional leading
/// `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run_named(stringify!($name), &config, |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)+
                (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts two values are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Rejects the current case inside a `proptest!` body; the runner draws a
/// replacement case instead of counting it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -2.0f64..3.0, n in 1usize..10) {
            prop_assert!((-2.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn tuples_and_map_compose(p in (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0.0f64..1.0, 2..5usize)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn assume_rejects_without_failing(x in 0.0f64..1.0) {
            prop_assume!(x > 0.5);
            prop_assert!(x > 0.5);
        }
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_named("always_fails", &ProptestConfig::with_cases(4), |_rng| {
                Err(crate::test_runner::TestCaseError::fail("boom".to_owned()))
            });
        });
        let err = result.expect_err("property should fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("always_fails") && msg.contains("boom"),
            "{msg}"
        );
    }

    #[test]
    fn runaway_rejection_is_reported() {
        let result = std::panic::catch_unwind(|| {
            crate::test_runner::run_named(
                "always_rejects",
                &ProptestConfig::with_cases(1),
                |_rng| Err(crate::test_runner::TestCaseError::reject("nope")),
            );
        });
        assert!(result.is_err());
    }
}
