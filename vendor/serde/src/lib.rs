//! Offline stand-in for `serde`.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal API-compatible subset of its external dependencies (see
//! `vendor/README.md`). This crate keeps the *type-level* serde contract —
//! `#[derive(Serialize, Deserialize)]` compiles and `T: Serialize` bounds
//! are satisfiable — without any runtime (de)serialization machinery,
//! which nothing in the workspace currently uses.
//!
//! `Serialize` and `Deserialize` are marker traits with blanket impls, so
//! every type trivially satisfies them; the derive macros in the sibling
//! `serde_derive` stub expand to nothing.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize`. Blanket-implemented for all types.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`. Blanket-implemented for all types.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Subset of `serde::de` needed for `DeserializeOwned` bounds.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T> DeserializeOwned for T {}
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
