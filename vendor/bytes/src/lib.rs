//! Offline stand-in for `bytes` 1.x.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal API-compatible subset of its external dependencies (see
//! `vendor/README.md`). This crate covers the surface `mpdf-wifi`'s
//! capture codec uses: [`BytesMut`] with the little-endian `put_*`
//! writers, [`Bytes`] as an immutable byte container, and [`Buf`]
//! implemented for `&[u8]` with the little-endian `get_*` readers.
//!
//! Unlike the real crate there is no refcounted zero-copy machinery —
//! [`Bytes`] owns a `Vec<u8>` — which is behaviorally equivalent for
//! encode/decode use.

#![forbid(unsafe_code)]

use std::ops::Deref;

/// Immutable contiguous byte container (stand-in for `bytes::Bytes`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new `Bytes`.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// Growable byte buffer (stand-in for `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with at least `cap` bytes of capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the buffer into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait (stand-in for `bytes::BufMut`), little-endian subset.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` in little-endian IEEE-754 order.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait (stand-in for `bytes::Buf`), little-endian subset.
///
/// # Panics
/// The `get_*` readers panic when fewer than the required bytes remain,
/// matching the real crate's contract; callers guard with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out of the buffer, advancing it.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian IEEE-754 `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.len(),
            "buffer underflow: need {} bytes, have {}",
            dst.len(),
            self.len()
        );
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn round_trip_all_widths() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0123_4567_89AB_CDEF);
        buf.put_f64_le(-2.5);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert!((r.get_f64_le() - -2.5).abs() < f64::EPSILON);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
