//! Offline stand-in for `rand` 0.8.
//!
//! The build container cannot reach crates.io, so the workspace vendors a
//! minimal API-compatible subset of its external dependencies (see
//! `vendor/README.md`). This crate covers exactly the surface the
//! workspace uses: `RngCore`/`SeedableRng`, the [`Rng::gen_range`]
//! extension over half-open and inclusive ranges, and
//! [`rngs::SmallRng`] seeded via `seed_from_u64`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand 0.8` uses for `SmallRng` on 64-bit targets, so
//! seeded streams are high quality and deterministic across runs (though
//! not bit-identical to upstream `rand`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

/// A random generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a range by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<usize> for RangeInclusive<usize> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = (end - start) as u64 + 1;
        start + (rng.next_u64() % span) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl SampleRange<i32> for Range<i32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0..1.0) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::SmallRng`: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            if s == [0; 4] {
                s = [1, 2, 3, 4];
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn f64_samples_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&x));
        }
    }

    #[test]
    fn inclusive_range_hits_both_ends() {
        let mut rng = SmallRng::seed_from_u64(9);
        let (mut lo, mut hi) = (false, false);
        for _ in 0..1000 {
            match rng.gen_range(0usize..=3) {
                0 => lo = true,
                3 => hi = true,
                _ => {}
            }
        }
        assert!(lo && hi);
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
