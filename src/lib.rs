//! # multipath-hd
//!
//! A full Rust reproduction of *"On Multipath Link Characterization and
//! Adaptation for Device-free Human Detection"* (Zhou, Yang, Wu, Liu, Ni —
//! ICDCS 2015): device-free human detection on commodity WiFi that
//! *harnesses* multipath instead of avoiding it, via the per-subcarrier
//! multipath factor, subcarrier weighting and MUSIC path weighting.
//!
//! This umbrella crate re-exports the workspace layers:
//!
//! | Layer | Crate | Role |
//! |---|---|---|
//! | numerics | [`rfmath`] | complex math, DFT, eigendecomposition, stats |
//! | geometry | [`geom`] | 2-D plan-view primitives |
//! | physics | [`propagation`] | image-method ray tracer + human models |
//! | measurement | [`wifi`] | Intel 5300 CSI emulation, impairments |
//! | AoA | [`music`] | covariance + MUSIC estimator |
//! | detection | [`core`] | multipath factor, weighting, detector |
//! | evaluation | [`eval`] | scenarios, metrics, per-figure experiments |
//!
//! ## Quickstart
//!
//! ```
//! use multipath_hd::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 6×8 m room with a 4 m link, as in the paper's §III measurements.
//! let room = Environment::empty_room(Rect::new(Vec2::ZERO, Vec2::new(8.0, 6.0)));
//! let link = ChannelModel::new(room, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0))?;
//! let mut rx = CsiReceiver::new(link, 42)?;
//!
//! // Calibrate with the room empty, then monitor.
//! let calibration = rx.capture_static(None, 200)?;
//! let detector = Detector::calibrate(
//!     &calibration,
//!     SubcarrierAndPathWeighting,
//!     DetectorConfig::default(),
//!     0.05,
//! )?;
//! let intruder = HumanBody::new(Vec2::new(4.0, 3.5));
//! let window = rx.capture_static(Some(&intruder), 25)?;
//! let decision = detector.decide(&window)?;
//! assert!(decision.score >= 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use mpdf_core as core;
pub use mpdf_eval as eval;
pub use mpdf_geom as geom;
pub use mpdf_music as music;
pub use mpdf_propagation as propagation;
pub use mpdf_rfmath as rfmath;
pub use mpdf_session as session;
pub use mpdf_wifi as wifi;

/// One-stop imports for the common pipeline.
pub mod prelude {
    pub use mpdf_core::detector::{Decision, Detector};
    pub use mpdf_core::profile::{CalibrationProfile, DetectorConfig};
    pub use mpdf_core::scheme::{
        Baseline, DetectionScheme, SubcarrierAndPathWeighting, SubcarrierWeighting,
    };
    pub use mpdf_geom::shapes::Rect;
    pub use mpdf_geom::vec2::{Point, Vec2};
    pub use mpdf_propagation::channel::ChannelModel;
    pub use mpdf_propagation::environment::Environment;
    pub use mpdf_propagation::human::HumanBody;
    pub use mpdf_propagation::material::Material;
    pub use mpdf_session::runtime::{SessionConfig, SessionRuntime};
    pub use mpdf_wifi::receiver::{Actor, CsiReceiver, ReceiverConfig};
}
