//! Cross-crate integration: physics → CSI → weighting → detection.

use multipath_hd::prelude::*;

fn classroom_link() -> ChannelModel {
    let env = mpdf_eval::scenario::classroom();
    ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap()
}

#[test]
fn calibrate_then_detect_all_schemes() {
    let mut rx = CsiReceiver::new(classroom_link(), 31).unwrap();
    let calibration = rx.capture_sessions(None, 50, 8).unwrap();
    let config = DetectorConfig::default();
    let intruder = HumanBody::new(Vec2::new(4.0, 3.0));

    // Session drift makes single windows noisy; compare session-averaged
    // scores, as any real deployment effectively does.
    let run = |scheme: &dyn DetectionScheme, rx: &mut CsiReceiver| {
        let profile = CalibrationProfile::build(&calibration[..200], &config).unwrap();
        let mean = |human: Option<&HumanBody>, rx: &mut CsiReceiver| {
            let mut total = 0.0;
            for _ in 0..8 {
                rx.resample_drift();
                let w = rx.capture_static(human, 25).unwrap();
                total += scheme.score(&profile, &w, &config).unwrap();
            }
            total / 8.0
        };
        let s_empty = mean(None, rx);
        let s_busy = mean(Some(&intruder), rx);
        (s_empty, s_busy)
    };
    for scheme in [
        &Baseline as &dyn DetectionScheme,
        &SubcarrierWeighting,
        &SubcarrierAndPathWeighting,
    ] {
        let (e, b) = run(scheme, &mut rx);
        assert!(
            b > 1.3 * e,
            "{}: busy {b} must clearly exceed empty {e}",
            scheme.name()
        );
    }
}

#[test]
fn campaign_scheme_ordering_matches_paper() {
    // Reduced campaign: the ROC ordering of balanced accuracies must hold
    // (baseline ≤ subcarrier ≤ combined), with a small tolerance because
    // this is a statistical result on a reduced sample.
    let cfg = mpdf_eval::workload::CampaignConfig {
        episodes_per_position: 2,
        negative_windows: 18,
        calibration_packets: 300,
        ..Default::default()
    };
    let scores = mpdf_eval::experiments::fig7::run_campaign_scores(&cfg).unwrap();
    let result = mpdf_eval::experiments::fig7::from_scores(&scores);
    let balanced: Vec<f64> = result
        .schemes
        .iter()
        .map(|s| (s.summary.operating.tp + 1.0 - s.summary.operating.fp) / 2.0)
        .collect();
    assert!(
        balanced[1] > balanced[0] - 0.05,
        "subcarrier {:.3} vs baseline {:.3}",
        balanced[1],
        balanced[0]
    );
    assert!(
        balanced[2] > balanced[0],
        "combined {:.3} vs baseline {:.3}",
        balanced[2],
        balanced[0]
    );
    // All well above chance.
    for (s, b) in result.schemes.iter().zip(&balanced) {
        assert!(*b > 0.6, "{} balanced accuracy {b}", s.name);
        assert!(s.summary.auc > 0.6, "{} AUC {}", s.name, s.summary.auc);
    }
}

#[test]
fn detector_streaming_flags_walkthrough() {
    let mut rx = CsiReceiver::new(classroom_link(), 77).unwrap();
    let calibration = rx.capture_sessions(None, 50, 8).unwrap();
    let det = Detector::calibrate(
        &calibration,
        SubcarrierAndPathWeighting,
        DetectorConfig::default(),
        0.1,
    )
    .unwrap();
    rx.resample_drift();
    let mut stream = rx.capture_static(None, 50).unwrap();
    let walk = mpdf_propagation::trajectory::LinearWalk::new(
        Vec2::new(3.0, 1.0),
        Vec2::new(5.0, 5.0),
        2.0,
    );
    stream.extend(
        rx.capture_moving(&HumanBody::new(walk.start), &walk, 100)
            .unwrap(),
    );
    let decisions = det.decide_stream(&stream).unwrap();
    assert_eq!(decisions.len(), 6);
    let empty_hits = decisions[..2].iter().filter(|d| d.detected).count();
    let walk_hits = decisions[2..].iter().filter(|d| d.detected).count();
    assert!(walk_hits >= 3, "walk windows detected: {walk_hits}/4");
    assert!(empty_hits <= 1, "empty windows flagged: {empty_hits}/2");
}

#[test]
fn multipath_factor_tracks_ground_truth() {
    // The measurable μ (Eq. 11) must track the simulator's exact LOS
    // power fraction across subcarriers on a clean receiver.
    let link = classroom_link();
    let snapshot = link.snapshot(None).unwrap();
    let band = mpdf_wifi::Band::wifi_2_4ghz_channel11();
    let freqs = band.frequencies();

    let cfg = ReceiverConfig {
        impairments: mpdf_wifi::ImpairmentModel::ideal(),
        clutter_drift_rel: 0.0,
        ..ReceiverConfig::default()
    };
    let mut rx = CsiReceiver::with_config(link, cfg, 3).unwrap();
    let packet = &rx.capture_static(None, 1).unwrap()[0];
    // The ground truth is evaluated at the nominal receiver point, which
    // is the *centre* element of the (centred) 3-element array — compare
    // against that antenna's row, not the antenna average (λ/2-spaced
    // elements fade differently).
    let measured =
        mpdf_core::multipath_factor::multipath_factors_row(packet.antenna_row(1), &freqs);
    let truth: Vec<f64> = freqs
        .iter()
        .map(|&f| snapshot.true_multipath_factor(f).unwrap())
        .collect();
    let corr = mpdf_rfmath::fit::pearson(&measured, &truth);
    assert!(corr > 0.7, "μ estimator correlation with truth: {corr}");
}

#[test]
fn music_locates_a_strong_scatterer_through_the_full_stack() {
    use mpdf_music::music::{estimate_aoa, AngleGrid, UlaSteering};
    // A human at a known angle from the receiver; MUSIC on the captured
    // CSI must place one path near 0° (LOS) — and with the scatterer
    // present the spectrum must shift toward its angle.
    let link = classroom_link();
    let cfg = ReceiverConfig {
        impairments: mpdf_wifi::ImpairmentModel::ideal(),
        clutter_drift_rel: 0.0,
        ..ReceiverConfig::default()
    };
    let mut rx = CsiReceiver::with_config(link, cfg, 5).unwrap();
    let packets = rx.capture_static(None, 10).unwrap();
    let snaps: Vec<Vec<mpdf_rfmath::Complex64>> = packets
        .iter()
        .flat_map(|p| (0..30).map(|k| p.subcarrier_column(k)).collect::<Vec<_>>())
        .collect();
    let angles = estimate_aoa(
        &snaps,
        &UlaSteering::three_half_wavelength(),
        2,
        &AngleGrid::full_front(1.0),
    )
    .unwrap();
    // LOS arrives broadside (0°) on the default +y-axis array for this
    // x-aligned link.
    let best = angles.iter().map(|a| a.abs()).fold(f64::MAX, f64::min);
    assert!(best < 10.0, "LOS angle estimate off by {best}°: {angles:?}");
}
