//! Failure injection and determinism across the full stack.

use mpdf_core::error::DetectError;
use multipath_hd::prelude::*;

fn classroom_link() -> ChannelModel {
    let env = mpdf_eval::scenario::classroom();
    ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap()
}

#[test]
fn degenerate_geometry_is_rejected_not_panicking() {
    let env = mpdf_eval::scenario::classroom();
    // TX = RX.
    assert!(ChannelModel::new(env.clone(), Vec2::new(2.0, 3.0), Vec2::new(2.0, 3.0)).is_err());
    // Outside the building shell entirely.
    assert!(ChannelModel::new(env, Vec2::new(-50.0, 0.0), Vec2::new(6.0, 3.0)).is_err());
}

#[test]
fn empty_and_misshapen_windows_error_cleanly() {
    let mut rx = CsiReceiver::new(classroom_link(), 1).unwrap();
    let calibration = rx.capture_static(None, 120).unwrap();
    let det = Detector::calibrate(
        &calibration,
        Baseline,
        DetectorConfig {
            window: 20,
            ..DetectorConfig::default()
        },
        0.1,
    )
    .unwrap();
    assert_eq!(det.decide(&[]), Err(DetectError::EmptyWindow));

    let bad = mpdf_wifi::CsiPacket::new(2, 30, vec![mpdf_rfmath::Complex64::ONE; 60], 0, 0.0);
    assert!(matches!(
        det.decide(&[bad]),
        Err(DetectError::ShapeMismatch { .. })
    ));
}

#[test]
fn too_little_calibration_is_reported() {
    let mut rx = CsiReceiver::new(classroom_link(), 2).unwrap();
    let calibration = rx.capture_static(None, 20).unwrap();
    let err =
        Detector::calibrate(&calibration, Baseline, DetectorConfig::default(), 0.1).unwrap_err();
    assert!(matches!(err, DetectError::InsufficientCalibration { .. }));
}

#[test]
fn very_low_snr_degrades_gracefully() {
    // At 0 dB SNR the pipeline must still run end to end and produce
    // finite scores; detection quality may collapse but never panic.
    let cfg = ReceiverConfig {
        impairments: mpdf_wifi::ImpairmentModel::commodity_nic().with_snr_db(0.0),
        ..ReceiverConfig::default()
    };
    let mut rx = CsiReceiver::with_config(classroom_link(), cfg, 3).unwrap();
    let calibration = rx.capture_static(None, 120).unwrap();
    let det = Detector::calibrate(
        &calibration,
        SubcarrierAndPathWeighting,
        DetectorConfig {
            window: 20,
            ..DetectorConfig::default()
        },
        0.1,
    )
    .unwrap();
    let body = HumanBody::new(Vec2::new(4.0, 3.0));
    let window = rx.capture_static(Some(&body), 20).unwrap();
    let d = det.decide(&window).unwrap();
    assert!(d.score.is_finite());
}

#[test]
fn fully_blocked_link_still_measures() {
    // A metal cabinet sitting on the LOS: the receiver sees mostly
    // reflections and noise — captures and detection must not fail.
    let mut b = Environment::builder(
        Rect::new(Vec2::new(-4.0, -3.0), Vec2::new(12.0, 9.0)),
        Material::CONCRETE,
    );
    b.furniture(
        Rect::new(Vec2::new(3.6, 2.4), Vec2::new(4.4, 3.6)),
        Material::METAL,
    );
    let env = b.build();
    let link = ChannelModel::new(env, Vec2::new(2.0, 3.0), Vec2::new(6.0, 3.0)).unwrap();
    let mut rx = CsiReceiver::new(link, 4).unwrap();
    let packets = rx.capture_static(None, 50).unwrap();
    assert!(packets.iter().all(|p| p.total_power().is_finite()));
    let profile = CalibrationProfile::build(&packets, &DetectorConfig::default()).unwrap();
    assert!(profile.static_power().iter().all(|p| p.is_finite()));
}

#[test]
fn whole_campaign_is_deterministic() {
    let cfg = mpdf_eval::workload::CampaignConfig {
        episodes_per_position: 1,
        negative_windows: 5,
        calibration_packets: 150,
        ..Default::default()
    };
    let cases = mpdf_eval::scenario::five_cases();
    let run = || {
        let data = mpdf_eval::workload::run_campaign(&cases[..2], &cfg).unwrap();
        mpdf_eval::workload::score_campaign(&data, &SubcarrierAndPathWeighting, &cfg.detector)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
}

#[test]
fn wall_adjacent_scenario_has_its_reflection() {
    assert!(mpdf_eval::experiments::fig5::has_wall_reflection());
}

#[test]
fn moving_capture_is_time_consistent() {
    let mut rx = CsiReceiver::new(classroom_link(), 6).unwrap();
    let walk = mpdf_propagation::trajectory::LinearWalk::new(
        Vec2::new(2.5, 1.0),
        Vec2::new(5.5, 5.0),
        1.0,
    );
    let packets = rx
        .capture_moving(&HumanBody::new(walk.start), &walk, 75)
        .unwrap();
    // Timestamps advance at 50 Hz and sequence numbers are consecutive.
    for (i, w) in packets.windows(2).enumerate() {
        assert_eq!(w[1].seq, w[0].seq + 1, "at {i}");
        assert!((w[1].timestamp - w[0].timestamp - 0.02).abs() < 1e-9);
    }
}
